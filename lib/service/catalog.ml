(* Versioned mutable catalog over the immutable Database.t. *)

module Db = Lb_relalg.Database
module R = Lb_relalg.Relation

type t = { mutable db : Db.t; mutable version : int }

let create () = { db = Db.empty; version = 0 }

let version t = t.version

let database t = t.db

let bump t db =
  t.db <- db;
  t.version <- t.version + 1

let without t name =
  Db.of_list
    (List.filter_map
       (fun n -> if n = name then None else Some (n, Db.find t.db n))
       (Db.names t.db))

let load t ~name ~attrs tuples =
  match R.make attrs tuples with
  | exception Invalid_argument msg -> Error msg
  | rel ->
      bump t (Db.add (without t name) name rel);
      Ok (R.cardinality rel)

let insert t ~name tuples =
  match Db.find_opt t.db name with
  | None -> Error (Printf.sprintf "no relation %S" name)
  | Some old -> (
      let attrs = R.attrs old in
      let width = R.width old in
      match
        List.find_opt (fun tup -> Array.length tup <> width) tuples
      with
      | Some tup ->
          Error
            (Printf.sprintf "tuple of width %d does not fit %S (width %d)"
               (Array.length tup) name width)
      | None -> (
          match R.make attrs (Array.to_list (R.tuples old) @ tuples) with
          | exception Invalid_argument msg -> Error msg
          | rel ->
              bump t (Db.add (without t name) name rel);
              Ok (R.cardinality rel)))

let drop t ~name =
  match Db.find_opt t.db name with
  | None -> Error (Printf.sprintf "no relation %S" name)
  | Some _ ->
      bump t (without t name);
      Ok ()

let summary t =
  Db.names t.db
  |> List.map (fun n -> (n, R.cardinality (Db.find t.db n)))
  |> List.sort compare
