(* Versioned mutable catalog over the immutable Database.t, with a
   delta-trie master copy per relation.

   Storage: each relation is held as a {!Lb_relalg.Delta_trie} - a base
   columnar trie plus sorted delta side tries.  Writes (insert/delete)
   apply an O(d log d) batch to the delta trie and re-materialize the
   Relation.t snapshot by one O(n + d) k-way merge (no re-sort, no
   dedup hash); loads build a fresh base.  Catalog relations therefore
   always hold their tuples lexicographically sorted, which is what
   lets the partition patcher below splice deltas in linearly.

   Versions: a global version (+1 per successful mutation, keys batch
   grouping) and a per-relation version (bumped only when that relation
   changes, surviving drop/reload).  The per-relation versions are the
   provenance the server's IVM layer stamps cached answers with.

   Sharded storage: the catalog keeps hash partitions of its relations
   warm across requests in [parts], keyed by (relation, column, shard
   count) and stamped with the relation version that produced them.  A
   small write no longer drops them: the effective delta rows are
   hash-split and spliced into the affected shards (two-pointer merge
   against the sorted shard rows), so warm partitions survive writes.
   Load/drop of a relation evicts only that relation's entries. *)

module Db = Lb_relalg.Database
module R = Lb_relalg.Relation
module Q = Lb_relalg.Query
module Shard = Lb_relalg.Shard
module Delta_trie = Lb_relalg.Delta_trie

type t = {
  mutable db : Db.t;
  store : (string, Delta_trie.t) Hashtbl.t; (* master copies *)
  versions : (string, int) Hashtbl.t; (* per-relation; survives drop *)
  mutable version : int;
  mutable shards : int; (* default shard count; 1 = unsharded *)
  parts : (string * int * int, int * R.t array) Hashtbl.t;
  arena : Lb_util.Arena.t;
      (* sort scratch for trie builds; mutations run single-threaded
         under the server's write mutex, so one arena is safe *)
}

let create () =
  {
    db = Db.empty;
    store = Hashtbl.create 16;
    versions = Hashtbl.create 16;
    version = 0;
    shards = 1;
    parts = Hashtbl.create 16;
    arena = Lb_util.Arena.create ();
  }

let arena_stats t =
  Lb_util.Arena.(capacity t.arena, grown t.arena)

let version t = t.version

let database t = t.db

let shards t = t.shards

let set_shards t k =
  if k < 1 then invalid_arg "Catalog.set_shards: k < 1";
  t.shards <- k

let rel_version t name =
  Option.value ~default:0 (Hashtbl.find_opt t.versions name)

let version_vector t names =
  List.sort_uniq String.compare names
  |> List.map (fun n -> (n, rel_version t n))

let delta_stats t name =
  Option.map
    (fun dt ->
      ( Delta_trie.side_count dt,
        Delta_trie.delta_rows dt,
        Delta_trie.compactions dt ))
    (Hashtbl.find_opt t.store name)

let without t name =
  Db.of_list
    (List.filter_map
       (fun n -> if n = name then None else Some (n, Db.find t.db n))
       (Db.names t.db))

(* Every successful mutation: new snapshot, both versions bumped. *)
let bump t name db =
  t.db <- db;
  t.version <- t.version + 1;
  Hashtbl.replace t.versions name (rel_version t name + 1)

let drop_parts_of t name =
  let stale =
    Hashtbl.fold
      (fun ((n, _, _) as key) _ acc -> if n = name then key :: acc else acc)
      t.parts []
  in
  List.iter (Hashtbl.remove t.parts) stale

(* Partition [rel]'s column [col] into [k] pieces, warm from the cache
   when the stamp matches the relation's current version. *)
let partition_of t ~name ~col ~k rel =
  let key = (name, col, k) in
  match Hashtbl.find_opt t.parts key with
  | Some (v, parts) when v = rel_version t name -> parts
  | _ ->
      let parts = Shard.partition_col ~k ~col rel in
      Hashtbl.replace t.parts key (rel_version t name, parts);
      parts

let partition_hook t ~k (a : Q.atom) ~col =
  if k < 2 then None
  else
    match Db.find_opt t.db a.Q.rel with
    | None -> None
    | Some rel ->
        if col < 0 || col >= R.width rel then None
        else Some (partition_of t ~name:a.Q.rel ~col ~k rel)

(* Splice a delta into one shard's sorted rows: two-pointer merge of
   [added] (disjoint from the shard) minus [removed] (a subset of it).
   Linear in the shard size, so a small write keeps every warm
   partition warm instead of rebuilding the hash split from scratch. *)
let splice_rows attrs (old_rows : int array array) added removed =
  let cmp = R.compare_tuples in
  let na = Array.length added and nr = Array.length removed in
  let n = Array.length old_rows in
  let out = Array.make (n + na - nr) [||] in
  let oi = ref 0 and ai = ref 0 and ri = ref 0 and w = ref 0 in
  while !oi < n || !ai < na do
    let take_old =
      !ai >= na || (!oi < n && cmp old_rows.(!oi) added.(!ai) <= 0)
    in
    if take_old then begin
      let r = old_rows.(!oi) in
      incr oi;
      if !ri < nr && cmp removed.(!ri) r = 0 then incr ri
      else begin
        out.(!w) <- r;
        incr w
      end
    end
    else begin
      out.(!w) <- added.(!ai);
      incr ai;
      incr w
    end
  done;
  R.of_sorted_distinct attrs (Array.sub out 0 !w)

(* Patch every cached partition of [name] in place of a rebuild: split
   the effective delta rows with the same hash and splice each shard.
   Entries whose stamp is not the pre-mutation version are evicted
   (they were already stale). *)
let patch_parts t name ~old_version ~added ~removed =
  let keys =
    Hashtbl.fold
      (fun ((n, _, _) as key) _ acc -> if n = name then key :: acc else acc)
      t.parts []
  in
  List.iter
    (fun ((_, col, k) as key) ->
      match Hashtbl.find_opt t.parts key with
      | Some (v, parts) when v = old_version ->
          let split rows =
            let buckets = Array.make k [] in
            (* reverse scan keeps each bucket sorted ascending *)
            for i = Array.length rows - 1 downto 0 do
              let s = Shard.shard_of ~k rows.(i).(col) in
              buckets.(s) <- rows.(i) :: buckets.(s)
            done;
            Array.map Array.of_list buckets
          in
          let added_by = split added and removed_by = split removed in
          let parts' =
            Array.mapi
              (fun i part ->
                if
                  Array.length added_by.(i) = 0
                  && Array.length removed_by.(i) = 0
                then part
                else
                  splice_rows (R.attrs part) (R.tuples part) added_by.(i)
                    removed_by.(i))
              parts
          in
          Hashtbl.replace t.parts key (rel_version t name, parts')
      | Some _ -> Hashtbl.remove t.parts key
      | None -> ())
    keys

let warm_leading t name rel =
  (* Warm the partitions a sharded driver will ask for first: the
     leading column is where a first-variable partition lands when the
     relation's own attribute order leads the plan. *)
  if t.shards > 1 && R.width rel > 0 then
    ignore (partition_of t ~name ~col:0 ~k:t.shards rel)

let load ?shards t ~name ~attrs tuples =
  match R.make attrs tuples with
  | exception Invalid_argument msg -> Error msg
  | rel ->
      (match shards with Some k -> set_shards t k | None -> ());
      Hashtbl.replace t.store name
        (Delta_trie.of_relation ~scratch:t.arena rel);
      drop_parts_of t name;
      bump t name (Db.add (without t name) name rel);
      warm_leading t name rel;
      Ok (R.cardinality rel)

(* Shared write path: apply the batch to the delta trie, re-materialize
   the snapshot by one merge, patch warm partitions.  Returns the
   effective rows (what actually changed state) for cache
   maintenance. *)
let write t ~name ~inserts ~deletes =
  match Hashtbl.find_opt t.store name with
  | None -> Error (Printf.sprintf "no relation %S" name)
  | Some dt -> (
      match Delta_trie.apply dt ~inserts ~deletes with
      | exception Invalid_argument _ ->
          let width = Delta_trie.width dt in
          let ragged =
            List.find_opt
              (fun tup -> Array.length tup <> width)
              (inserts @ deletes)
          in
          Error
            (match ragged with
            | Some tup ->
                Printf.sprintf
                  "tuple of width %d does not fit %S (width %d)"
                  (Array.length tup) name width
            | None -> Printf.sprintf "invalid tuples for %S" name)
      | { Delta_trie.dt = dt'; added; removed } ->
          let old_version = rel_version t name in
          let rel = Delta_trie.to_relation dt' in
          Hashtbl.replace t.store name dt';
          bump t name (Db.add (without t name) name rel);
          patch_parts t name ~old_version ~added ~removed;
          Ok (R.cardinality rel, added, removed))

let insert t ~name tuples =
  Result.map
    (fun (n, added, _) -> (n, added))
    (write t ~name ~inserts:tuples ~deletes:[])

let delete t ~name tuples =
  Result.map
    (fun (n, _, removed) -> (n, removed))
    (write t ~name ~inserts:[] ~deletes:tuples)

let drop t ~name =
  match Db.find_opt t.db name with
  | None -> Error (Printf.sprintf "no relation %S" name)
  | Some _ ->
      Hashtbl.remove t.store name;
      drop_parts_of t name;
      bump t name (without t name);
      Ok ()

let summary t =
  Db.names t.db
  |> List.map (fun n -> (n, R.cardinality (Db.find t.db n)))
  |> List.sort compare

(* --- snapshot support (durability) --- *)

let dump t =
  Db.names t.db
  |> List.sort String.compare
  |> List.map (fun n ->
         let rel = Db.find t.db n in
         (n, R.attrs rel, R.tuples rel, rel_version t n))

(* Rows exactly as [dump] wrote them: rectangular, lexicographically
   sorted, duplicate-free - the precondition for adopting a prebuilt
   trie and for [R.of_sorted_distinct].  O(n * width). *)
let dump_shaped attrs (rows : int array array) =
  let w = Array.length attrs in
  let n = Array.length rows in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Array.length rows.(i) <> w then ok := false
    else if i > 0 && R.compare_tuples rows.(i - 1) rows.(i) >= 0 then
      ok := false
  done;
  !ok

(* Restore a snapshot: trusted state (no validation beyond R.make),
   versions set - not bumped - so persisted provenance stamps keep
   matching.  Existing state is discarded.

   [tries] is the mapped-snapshot fast path: when it supplies a
   prebuilt trie whose shape matches the relation (and the snapshot
   rows are in dump form), the trie is adopted as the delta-trie base
   with no sort and no columnarization - its levels stay wherever the
   supplier put them, e.g. in an mmap'd image.  Any mismatch falls
   back to the ordinary build.  Returns how many relations took the
   fast path. *)
let restore ?shards ?tries t ~version rels =
  (match shards with Some k -> set_shards t k | None -> ());
  Hashtbl.reset t.store;
  Hashtbl.reset t.versions;
  Hashtbl.reset t.parts;
  t.db <- Db.empty;
  t.version <- version;
  let mapped = ref 0 in
  List.iter
    (fun (name, attrs, rows, rv) ->
      let prebuilt =
        match tries with
        | None -> None
        | Some hook -> (
            match hook name with
            | Some trie
              when Lb_relalg.Trie.attrs trie = attrs
                   && Lb_relalg.Trie.row_count trie = Array.length rows
                   && dump_shaped attrs rows ->
                Some trie
            | _ -> None)
      in
      let rel, dt =
        match prebuilt with
        | Some trie ->
            incr mapped;
            (R.of_sorted_distinct attrs rows, Delta_trie.of_trie trie)
        | None ->
            let rel = R.make attrs (Array.to_list rows) in
            (rel, Delta_trie.of_relation ~scratch:t.arena rel)
      in
      Hashtbl.replace t.store name dt;
      Hashtbl.replace t.versions name rv;
      t.db <- Db.add t.db name rel;
      warm_leading t name rel)
    rels;
  !mapped
