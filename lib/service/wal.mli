(** Write-ahead log of catalog mutations: the redo half of the durable
    catalog ({!Snapshot} is the checkpoint half).

    Layout: an 8-byte magic header then CRC-framed records - 4-byte LE
    payload length, a canonical-JSON payload, 4-byte LE CRC-32 of the
    payload.  {!append} writes the whole frame in one [write] and
    fsyncs, so an acknowledged mutation is on disk.  {!replay} never
    raises on damage: it returns the longest valid record prefix and
    flags torn/corrupt tails, which {!repair} truncates away.

    Records are stamped with the catalog version {e after} their
    mutation, so recovery skips records a snapshot already covers. *)

type record =
  | Load of { name : string; attrs : string array; tuples : int array list }
  | Insert of { name : string; tuples : int array list }
  | Delete of { name : string; tuples : int array list }
  | Drop of { name : string }

type replayed = {
  records : (int * record) list;
      (** (catalog version after the mutation, record), oldest first *)
  valid_bytes : int;  (** offset just past the last valid record *)
  truncated : bool;  (** damaged or torn bytes followed the valid prefix *)
}

(** Decode the longest valid prefix of the log at [path].  A missing
    file is an empty log; a file without the magic header yields no
    records (flagged truncated when non-empty).  Never raises. *)
val replay : string -> replayed

type writer

(** Open (creating with the magic header if absent) for appending. *)
val open_writer : string -> writer

(** Truncate damaged bytes past [valid_bytes] (from {!replay}), so the
    next append extends a valid log.  No-op on a clean log. *)
val repair : writer -> valid_bytes:int -> unit

(** Append one record stamped with the post-mutation catalog version;
    fsyncs before returning. *)
val append : writer -> version:int -> record -> unit

(** Empty the log back to just the header (after a snapshot absorbed
    its records). *)
val reset : writer -> unit

(** Current byte size of the log file, header included - the input of
    the size-based auto-checkpoint policy ([--snapshot-bytes]). *)
val size : writer -> int

val close : writer -> unit

(** {2 Shared plumbing}

    Exposed for {!Snapshot} (same framing) and for the fault-injection
    tests, which corrupt logs surgically. *)

(** CRC-32 (IEEE 802.3, reflected) of a string. *)
val crc32 : string -> int

(** [frame payload] is the length/payload/CRC wire form of one record. *)
val frame : string -> string

(** [unframe s off] decodes the frame at [off]: [Some (payload, next)]
    or [None] on short, oversized, or CRC-failing bytes. *)
val unframe : string -> int -> (string * int) option

(** The 8-byte log header. *)
val magic : string

(** [encode ~version record] is the JSON payload of one record. *)
val encode : version:int -> record -> string

(** Inverse of {!encode}; [None] on malformed payloads. *)
val decode : string -> (int * record) option
