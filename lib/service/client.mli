(** Typed client for the serve line protocol - the one wire surface
    shared by the coordinator, [lbt query --remote], the tests, and
    the examples.

    {!connect} negotiates the protocol generation: it probes with
    [{"op":"hello","v":2}]; a v2 server ({!Server.config.protocol_max}
    >= 2) answers with its negotiated version, while a v1 server
    rejects the probe with the structured [unsupported_version] error
    and the client falls back to a plain v1 hello - so the same client
    binary talks to both generations, and v1 servers never see v2
    requests.

    Every receive is guarded by the connection's [timeout_ms] (via
    [select]), so a dead peer yields [Error "timeout waiting for
    reply"] instead of a hang - the property the coordinator's
    degraded mode is built on. *)

type t

(** TCP connect + version negotiation.  [timeout_ms] bounds every
    subsequent receive (default: wait forever).  [host] defaults to
    127.0.0.1. *)
val connect :
  ?timeout_ms:int -> ?host:string -> port:int -> unit -> (t, string) result

(** Negotiated protocol version: 1 or 2. *)
val version : t -> int

val close : t -> unit

(** Send one request (canonical encoding) and read one reply. *)
val request : t -> Protocol.request -> (Json.t, string) result

(** Send a raw line (need not be well-formed - protocol tests splice
    arbitrary fields) and read one reply. *)
val raw_request : t -> string -> (Json.t, string) result

(** ["status"] field of a reply, if present. *)
val reply_status : Json.t -> string option

val reply_ok : Json.t -> bool

(** ["code"] field of a structured error reply. *)
val error_code : Json.t -> string option

val error_message : Json.t -> string

(** {2 Convenience wrappers} *)

val ping : t -> (Json.t, string) result

val hello : t -> (Json.t, string) result

val stats : t -> (Json.t, string) result

val query :
  ?opts:Protocol.query_opts -> t -> string -> (Json.t, string) result

val load :
  t ->
  name:string ->
  attrs:string list ->
  int list list ->
  (Json.t, string) result

val insert : t -> name:string -> int list list -> (Json.t, string) result

val delete : t -> name:string -> int list list -> (Json.t, string) result

val drop : t -> name:string -> (Json.t, string) result

val shutdown : t -> (Json.t, string) result

(** {2 In-process scripted sessions}

    Run a whole request script through {!Server.serve_pipe} against an
    in-process server - the real front end (window draining, admission
    control, version gate) without sockets.  Replies come back in
    request order, one per line. *)

val run_script_lines : Server.t -> string list -> string list

(** {!run_script_lines} over canonically-encoded requests, replies
    parsed.  Raises {!Json.Parse_error} if the server emits a
    malformed line (it never should). *)
val run_script : Server.t -> Protocol.request list -> Json.t list
