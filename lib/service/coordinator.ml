(* The coordinator side of the distributed tier: plans once (in the
   server), scatters per-shard subqueries to worker replicas, fans
   mutations out with version stamps, and merges ordered per-worker
   streams into byte-identical answers.

   Slice assignment is static and liveness-independent: worker [w] of
   [W] owns shard indices {i : i mod W = w}, and slice 0 carries the
   lead flag (the one participant counting global level-0 work).  A
   dead worker's slice - owned set AND lead flag - is absorbed locally
   through {!Server.exec_subquery}, so every shard is executed exactly
   once and exactly one participant leads regardless of failures:
   summed counters and merged rows stay bit-identical to a
   single-process [--shards K] run, and the reply is merely marked
   "status":"degraded". *)

module Metrics = Lb_util.Metrics
module Relation = Lb_relalg.Relation
module Shard = Lb_relalg.Shard

type slot = {
  w_host : string;
  w_port : int;
  mutable conn : Client.t option;
  mutable synced : int;
      (* catalog version the replica is known to hold; -1 = unknown,
         forcing a reseed before its next subquery *)
}

type t = {
  server : Server.t;
  shards : int;
  timeout_ms : int;
  slots : slot array;
}

let workers t =
  Array.to_list (Array.map (fun s -> (s.w_host, s.w_port)) t.slots)

let drop_conn slot =
  (match slot.conn with Some c -> Client.close c | None -> ());
  slot.conn <- None;
  slot.synced <- -1

let conn_of t slot =
  match slot.conn with
  | Some c -> Ok c
  | None -> (
      match
        Client.connect ~timeout_ms:t.timeout_ms ~host:slot.w_host
          ~port:slot.w_port ()
      with
      | Error _ as e -> e
      | Ok c when Client.version c >= 2 ->
          slot.conn <- Some c;
          slot.synced <- -1;
          Ok c
      | Ok c ->
          Client.close c;
          Error "worker does not speak protocol v2")

let checked_request slot c req =
  match Client.request c req with
  | Error _ as e ->
      drop_conn slot;
      e
  | Ok reply when Client.reply_ok reply -> Ok reply
  | Ok reply ->
      (* A structured reject (e.g. stale_replica) leaves the
         connection usable, but the replica needs a reseed. *)
      slot.synced <- -1;
      Error (Client.error_message reply)

(* Full replica reseed: stream every relation (with its version) and
   commit wholesale at the coordinator's catalog version. *)
let reseed t slot c =
  let cat = Server.catalog t.server in
  let version = Catalog.version cat in
  let rec send_all = function
    | [] -> Ok ()
    | (name, attrs, tuples, rel_version) :: rest -> (
        let req =
          Protocol.Partition_load
            {
              name;
              attrs = Array.to_list attrs;
              tuples = List.map Array.to_list (Array.to_list tuples);
              rel_version;
            }
        in
        match checked_request slot c req with
        | Error _ as e -> e
        | Ok _ -> send_all rest)
  in
  match send_all (Catalog.dump cat) with
  | Error _ as e -> e
  | Ok () -> (
      match
        checked_request slot c (Protocol.Sync { version; shards = t.shards })
      with
      | Error _ as e -> e
      | Ok _ ->
          slot.synced <- version;
          Ok ())

let ensure_synced t slot =
  match conn_of t slot with
  | Error _ as e -> e
  | Ok c ->
      if slot.synced = Catalog.version (Server.catalog t.server) then Ok c
      else Result.map (fun () -> c) (reseed t slot c)

(* --- reply parsing --- *)

let ( let* ) = Result.bind

let list_of_field name reply =
  match Json.member name reply with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "reply missing %S" name)

let parse_subquery_reply reply =
  if not (Client.reply_ok reply) then Error (Client.error_message reply)
  else
    let* attrs = list_of_field "attributes" reply in
    let* attrs =
      List.fold_right
        (fun v acc ->
          let* acc = acc in
          match v with
          | Json.String s -> Ok (s :: acc)
          | _ -> Error "non-string attribute")
        attrs (Ok [])
    in
    let* rows = list_of_field "rows" reply in
    let* rows =
      List.fold_right
        (fun r acc ->
          let* acc = acc in
          match r with
          | Json.List cells ->
              let* row =
                List.fold_right
                  (fun c acc ->
                    let* acc = acc in
                    match c with
                    | Json.Int n -> Ok (n :: acc)
                    | _ -> Error "non-integer cell")
                  cells (Ok [])
              in
              Ok (Array.of_list row :: acc)
          | _ -> Error "non-list row")
        rows (Ok [])
    in
    let* counters =
      match Json.member "counters" reply with
      | Some (Json.Obj fields) ->
          List.fold_right
            (fun (k, v) acc ->
              let* acc = acc in
              match v with
              | Json.Int n -> Ok ((k, n) :: acc)
              | _ -> Error "non-integer counter")
            fields (Ok [])
      | _ -> Error "reply missing \"counters\""
    in
    Ok (Array.of_list attrs, Array.of_list rows, counters)

(* --- the dispatcher --- *)

(* One remote slice with a single retry through a fresh
   connection/reseed; the caller absorbs a second failure locally. *)
let remote_subquery t slot req ~expect_version =
  let attempt () =
    match ensure_synced t slot with
    | Error _ as e -> e
    | Ok c -> (
        match checked_request slot c req with
        | Error _ as e -> e
        | Ok reply ->
            if Json.int_field "version" reply = Ok expect_version then Ok reply
            else begin
              slot.synced <- -1;
              Error "replica answered at the wrong version"
            end)
  in
  match attempt () with Ok r -> Ok r | Error _ -> attempt ()

let dispatch_query t ~text ~engine =
  let nw = Array.length t.slots in
  if nw = 0 then Error "no workers attached"
  else begin
    let metrics = Server.metrics t.server in
    Metrics.incr metrics "serve.dist.scatters";
    let expect_version = Catalog.version (Server.catalog t.server) in
    let ename = Planner.engine_name engine in
    let degraded = ref false in
    let slices =
      Array.init nw (fun w ->
          let owned =
            List.filter (fun i -> i mod nw = w) (List.init t.shards Fun.id)
          in
          let lead = w = 0 in
          let req =
            Protocol.Subquery
              { text; engine = ename; shards = t.shards; owned; lead }
          in
          match remote_subquery t t.slots.(w) req ~expect_version with
          | Ok reply -> reply
          | Error _ ->
              (* Absorb the dead worker's slice - same owned set, same
                 lead flag, same reply shape - so the merge below has
                 one path for live and absorbed slices. *)
              degraded := true;
              Metrics.incr metrics "serve.dist.absorbed";
              Server.exec_subquery t.server ~text ~engine:ename
                ~shards:t.shards ~owned ~lead)
    in
    let parsed =
      Array.fold_right
        (fun reply acc ->
          let* acc = acc in
          let* p = parse_subquery_reply reply in
          Ok (p :: acc))
        slices (Ok [])
    in
    match parsed with
    | Error _ as e -> e
    | Ok parsed ->
        let rels =
          Array.of_list
            (List.map
               (fun (attrs, rows, _) -> Relation.of_sorted_distinct attrs rows)
               parsed)
        in
        let merged = Shard.merge_sorted rels in
        let totals = Hashtbl.create 16 in
        List.iter
          (fun (_, _, counters) ->
            List.iter
              (fun (k, v) ->
                Hashtbl.replace totals k
                  (v + Option.value ~default:0 (Hashtbl.find_opt totals k)))
              counters)
          parsed;
        let d_counters =
          List.sort compare
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals [])
        in
        Ok
          {
            Server.d_attributes = Relation.attrs merged;
            d_rows = Relation.tuples merged;
            d_counters;
            d_degraded = !degraded;
          }
  end

let mutation_of_record = function
  | Wal.Load { name; attrs; tuples } ->
      Protocol.Load
        {
          name;
          attrs = Array.to_list attrs;
          tuples = List.map Array.to_list tuples;
        }
  | Wal.Insert { name; tuples } ->
      Protocol.Insert { name; tuples = List.map Array.to_list tuples }
  | Wal.Delete { name; tuples } ->
      Protocol.Delete { name; tuples = List.map Array.to_list tuples }
  | Wal.Drop { name } -> Protocol.Drop { name }

(* Fan one applied mutation out.  Only replicas exactly one version
   behind can apply it; anything else (dead, stale, fresh connection)
   is left for a lazy reseed at its next subquery. *)
let notify_mutation t ~version record =
  let mutation = mutation_of_record record in
  Array.iter
    (fun slot ->
      if slot.synced = version - 1 then
        match conn_of t slot with
        | Error _ -> ()
        | Ok c -> (
            match
              checked_request slot c (Protocol.Apply { version; mutation })
            with
            | Ok _ -> slot.synced <- version
            | Error _ -> ()))
    t.slots

let attach ?(timeout_ms = 5000) server ~shards ~workers =
  let slots =
    Array.of_list
      (List.map
         (fun (w_host, w_port) -> { w_host; w_port; conn = None; synced = -1 })
         workers)
  in
  let t = { server; shards; timeout_ms; slots } in
  Server.set_dispatcher server
    {
      Server.dispatch_query = (fun ~text ~engine -> dispatch_query t ~text ~engine);
      notify_mutation = (fun ~version record -> notify_mutation t ~version record);
    };
  t

let detach t = Array.iter drop_conn t.slots
