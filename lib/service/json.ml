(* Minimal JSON: a recursive-descent parser and a canonical printer.

   This is deliberately not a general-purpose JSON library: it supports
   exactly what the line protocol and the analyze encoder need, with a
   printing discipline chosen so that printing is a retraction of
   parsing - [to_string (parse (to_string v)) = to_string v]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- printing --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Integral floats print as "x.0" (exact, and visibly a float);
   everything else prints with 17 significant digits, which
   round-trips any finite double.  Non-finite floats have no JSON
   representation; they become null (the service never emits them). *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if not (Float.is_finite x) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr x)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          to_buffer buf item)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- parsing --- *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> fail "expected '%c' at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "invalid literal at offset %d" c.pos

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.text then
                  fail "truncated \\u escape";
                let hex = String.sub c.text c.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape %S" hex
                in
                c.pos <- c.pos + 4;
                add_utf8 buf code
            | e -> fail "bad escape '\\%c'" e);
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        advance c;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "bad number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "bad number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" c.pos
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" c.pos
        in
        Obj (fields [])
      end
  | Some ch -> fail "unexpected character '%c' at offset %d" ch c.pos

let parse s =
  let c = { text = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail "trailing input at offset %d" c.pos;
  v

(* --- accessors --- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let string_field name v =
  match member name v with
  | Some (String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name v =
  match member name v with
  | Some (Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_string_field name v =
  match member name v with
  | Some (String s) -> Ok (Some s)
  | Some Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let opt_int_field name v =
  match member name v with
  | Some (Int i) -> Ok (Some i)
  | Some Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let opt_bool_field ?(default = false) name v =
  match member name v with
  | Some (Bool b) -> Ok b
  | Some Null | None -> Ok default
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let list_field name v =
  match member name v with
  | Some (List l) -> Ok l
  | Some _ -> Error (Printf.sprintf "field %S must be an array" name)
  | None -> Error (Printf.sprintf "missing field %S" name)
