(* The structure-aware planner.  Decision procedure:

     acyclic              -> Yannakakis   (O(input + output), exponent 1)
     <= 2 atoms           -> Binary_hash  (a single hash join is optimal)
     cyclic, arity <= 2   -> Leapfrog     (graph-shaped: sorted streams win)
     cyclic, arity  > 2   -> Generic_join (columnar tries at any arity)

   Both WCOJ choices run at the AGM exponent rho*; the greedy binary
   plan's max prefix exponent is >= rho* by construction (the last
   prefix is the whole query), so on cyclic queries with >= 3 atoms a
   WCOJ engine is never predicted to lose. *)

module Q = Lb_relalg.Query
module Cost = Lb_relalg.Cost

type engine = Yannakakis | Generic_join | Leapfrog | Binary_hash

let engine_name = function
  | Yannakakis -> "yannakakis"
  | Generic_join -> "generic_join"
  | Leapfrog -> "leapfrog"
  | Binary_hash -> "binary_hash"

let all_engines = [ Yannakakis; Generic_join; Leapfrog; Binary_hash ]

let engine_of_name s =
  match
    List.find_opt (fun e -> engine_name e = String.lowercase_ascii s) all_engines
  with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf "unknown engine %S (expected one of: %s)" s
           (String.concat ", " (List.map engine_name all_engines)))

type plan = {
  engine : engine;
  forced : bool;
  acyclic : bool;
  rho_star : float option;
  predicted_exponent : float;
  atom_order : int list option;
  compiled : Lb_relalg.Compile.ir option;
  explanation : string list;
}

let advisor_strategy = function
  | Yannakakis -> Lowerbounds.Advisor.Yannakakis
  | Generic_join | Leapfrog -> Lowerbounds.Advisor.Worst_case_optimal
  | Binary_hash -> Lowerbounds.Advisor.Binary_plan

let max_arity (q : Q.t) =
  List.fold_left (fun acc (a : Q.atom) -> max acc (Array.length a.attrs)) 0 q

(* The AGM statements of the analysis, one-lined, so explanations carry
   the same verdicts `lbt analyze` prints. *)
let bound_statements (q : Q.t) =
  let analysis = Lowerbounds.Bounds.analyze_query q in
  List.map Lowerbounds.Report.statement_to_string
    analysis.Lowerbounds.Bounds.statements

(* Lower the schema half of a WCOJ plan once, at planning time: the IR
   depends only on the query text and the default variable order, so it
   rides in the plan cache and is re-resolved against fresh tries per
   execution.  [lower] cannot fail on a parsed query (every attribute
   of the default order comes from an atom), but planning must never
   die on a lowering bug - degrade to the interpreted path instead. *)
let lower_ir engine (q : Q.t) =
  let lower ce =
    match Lb_relalg.Compile.lower ~engine:ce q with
    | ir -> Some ir
    | exception Invalid_argument _ -> None
  in
  match engine with
  | Generic_join -> lower Lb_relalg.Compile.Generic
  | Leapfrog -> lower Lb_relalg.Compile.Leapfrog
  | Yannakakis | Binary_hash -> None

let mk ?atom_order ?compiled ~forced ~acyclic ~rho ~exponent ~why engine q =
  {
    engine;
    forced;
    acyclic;
    rho_star = rho;
    predicted_exponent = exponent;
    atom_order;
    compiled;
    explanation =
      (Printf.sprintf "strategy: %s [%s]" (engine_name engine)
         (Lowerbounds.Advisor.strategy_name (advisor_strategy engine))
      :: why)
      @ bound_statements q;
  }

let wcoj_exponent_or_atoms (q : Q.t) =
  match Cost.wcoj_exponent q with
  | Some r -> (Some r, r)
  (* rho* undefined only on degenerate hypergraphs; fall back to the
     trivial exponent |atoms| (a full cross product). *)
  | None -> (None, float_of_int (List.length q))

let choose_engine (q : Q.t) =
  if Lb_relalg.Yannakakis.is_acyclic q then Yannakakis
  else if List.length q <= 2 then Binary_hash
  else if max_arity q <= 2 then Leapfrog
  else Generic_join

let build ?(compile = true) ~forced engine db (q : Q.t) =
  let acyclic = Lb_relalg.Yannakakis.is_acyclic q in
  let rho, wcoj_exp = wcoj_exponent_or_atoms q in
  let compiled = if compile then lower_ir engine q else None in
  match engine with
  | Yannakakis ->
      mk ~forced ~acyclic ~rho ~exponent:1.0
        ~why:
          [
            "query is alpha-acyclic: semijoin reduction caps every \
             intermediate by the output (O(input + output))";
          ]
        Yannakakis q
  | Generic_join ->
      mk ?compiled ~forced ~acyclic ~rho ~exponent:wcoj_exp
        ~why:
          [
            Printf.sprintf
              "worst-case optimal: Generic Join runs in O(N^%.3f), the AGM \
               bound (Theorem 3.3)"
              wcoj_exp;
          ]
        Generic_join q
  | Leapfrog ->
      mk ?compiled ~forced ~acyclic ~rho ~exponent:wcoj_exp
        ~why:
          [
            Printf.sprintf
              "worst-case optimal: Leapfrog Triejoin runs in O(N^%.3f), the \
               AGM bound (Theorem 3.3); all atoms are binary, so sorted-key \
               leapfrogging applies directly"
              wcoj_exp;
          ]
        Leapfrog q
  | Binary_hash ->
      let order, exponent =
        match Cost.binary_exponent db q with
        | Some (order, e) -> (Some order, e)
        | None -> (None, wcoj_exp)
      in
      let why =
        if List.length q <= 2 then
          [ "at most two atoms: a single hash join is already optimal" ]
        else
          [
            Printf.sprintf
              "left-deep hash joins in greedy order; intermediates can reach \
               N^%.3f on worst-case data (prefix AGM bound, Theorem 3.2)"
              exponent;
          ]
      in
      mk ?atom_order:order ~forced ~acyclic ~rho ~exponent ~why Binary_hash q

let choose ?compile db q = build ?compile ~forced:false (choose_engine q) db q

let plan_for ?compile engine db q =
  if engine = Yannakakis && not (Lb_relalg.Yannakakis.is_acyclic q) then
    Error "yannakakis requires an alpha-acyclic query"
  else Ok (build ?compile ~forced:true engine db q)
