(* The structure-aware planner.  Decision procedure:

     acyclic              -> Yannakakis   (O(input + output), exponent 1)
     <= 2 atoms           -> Binary_hash  (a single hash join is optimal)
     cyclic, fhw < rho*   -> Decomposed   (bag materialization at N^fhw
                                           + Yannakakis over the join tree)
     cyclic, arity <= 2   -> Leapfrog     (graph-shaped: sorted streams win)
     cyclic, arity  > 2   -> Generic_join (columnar tries at any arity)

   Both flat WCOJ choices run at the AGM exponent rho*; the greedy
   binary plan's max prefix exponent is >= rho* by construction (the
   last prefix is the whole query), so on cyclic queries with >= 3
   atoms a WCOJ engine is never predicted to lose.  The decomposition
   route refines this further: a fractional hypertree decomposition
   (computed via the lb_lp simplex per bag) caps every bag at
   N^{rho*(bag)} <= N^{fhw}, so whenever fhw < rho* the decomposition
   strictly beats the flat engines on worst-case data - the
   Fan-Koutris / Ngo upper-bound recipe the paper's Section 3-4
   machinery composes into. *)

module Q = Lb_relalg.Query
module Cost = Lb_relalg.Cost
module Fhw = Lb_hypergraph.Fhw
module Td = Lb_graph.Tree_decomposition

type engine = Yannakakis | Generic_join | Leapfrog | Binary_hash | Decomposed

let engine_name = function
  | Yannakakis -> "yannakakis"
  | Generic_join -> "generic_join"
  | Leapfrog -> "leapfrog"
  | Binary_hash -> "binary_hash"
  | Decomposed -> "decomposed"

let all_engines = [ Yannakakis; Generic_join; Leapfrog; Binary_hash; Decomposed ]

let engine_of_name s =
  match
    List.find_opt (fun e -> engine_name e = String.lowercase_ascii s) all_engines
  with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf "unknown engine %S (expected one of: %s)" s
           (String.concat ", " (List.map engine_name all_engines)))

type plan = {
  engine : engine;
  forced : bool;
  acyclic : bool;
  rho_star : float option;
  fhw : float option;
  predicted_exponent : float;
  atom_order : int list option;
  decomposition : Td.t option;
  compiled : Lb_relalg.Compile.ir option;
  explanation : string list;
}

let advisor_strategy = function
  | Yannakakis -> Lowerbounds.Advisor.Yannakakis
  | Generic_join | Leapfrog | Decomposed -> Lowerbounds.Advisor.Worst_case_optimal
  | Binary_hash -> Lowerbounds.Advisor.Binary_plan

let max_arity (q : Q.t) =
  List.fold_left (fun acc (a : Q.atom) -> max acc (Array.length a.attrs)) 0 q

(* The AGM statements of the analysis, one-lined, so explanations carry
   the same verdicts `lbt analyze` prints. *)
let bound_statements (q : Q.t) =
  let analysis = Lowerbounds.Bounds.analyze_query q in
  List.map Lowerbounds.Report.statement_to_string
    analysis.Lowerbounds.Bounds.statements

(* Lower the schema half of a WCOJ plan once, at planning time: the IR
   depends only on the query text and the default variable order, so it
   rides in the plan cache and is re-resolved against fresh tries per
   execution.  [lower] cannot fail on a parsed query (every attribute
   of the default order comes from an atom), but planning must never
   die on a lowering bug - degrade to the interpreted path instead.
   The decomposition route compiles per bag at execution time
   ([Decomposed_join]'s [~compile]), so it carries no top-level IR. *)
let lower_ir engine (q : Q.t) =
  let lower ce =
    match Lb_relalg.Compile.lower ~engine:ce q with
    | ir -> Some ir
    | exception Invalid_argument _ -> None
  in
  match engine with
  | Generic_join -> lower Lb_relalg.Compile.Generic
  | Leapfrog -> lower Lb_relalg.Compile.Leapfrog
  | Yannakakis | Binary_hash | Decomposed -> None

let mk ?atom_order ?compiled ?fhw ?decomposition ~forced ~acyclic ~rho ~exponent
    ~why engine q =
  {
    engine;
    forced;
    acyclic;
    rho_star = rho;
    fhw;
    predicted_exponent = exponent;
    atom_order;
    decomposition;
    compiled;
    explanation =
      (Printf.sprintf "strategy: %s [%s]" (engine_name engine)
         (Lowerbounds.Advisor.strategy_name (advisor_strategy engine))
      :: why)
      @ bound_statements q;
  }

let wcoj_exponent_or_atoms (q : Q.t) =
  match Cost.wcoj_exponent q with
  | Some r -> (Some r, r)
  (* rho* undefined only on degenerate hypergraphs; fall back to the
     trivial exponent |atoms| (a full cross product). *)
  | None -> (None, float_of_int (List.length q))

(* fhw and the realizing decomposition, for the shapes where a
   decomposition route could exist (cyclic, >= 3 atoms - anything else
   already has an exponent-1 or single-join plan).  Exact
   elimination-order search up to 8 attributes, greedy beyond; the
   per-bag covers come from the lb_lp simplex. *)
let fhw_info ~acyclic (q : Q.t) =
  if acyclic || List.length q < 3 then None
  else
    match Fhw.decomposition ~max_n:8 (Q.hypergraph q) with
    | w, td when w < infinity -> Some (w, td)
    | _ -> None
    | exception Invalid_argument _ -> None

(* The fhw-vs-rho* route verdict, pinned by the explain golden test.
   Decomposition wins only with a real margin - ties go to the flat
   engines, whose constant factors are lower. *)
let margin = 1e-6

let decomposition_wins ~info ~rho =
  match (info, rho) with
  | Some (w, _), Some r -> w < r -. margin
  | _ -> false

let flat_route_line ~forced ~info ~rho =
  match (info, rho) with
  | Some (w, _), Some r ->
      if w < r -. margin then
        [
          Printf.sprintf
            "route: flat%s; a decomposition would cap bags at N^%.3f (fhw) \
             vs N^%.3f (rho*)"
            (if forced then " (forced engine)" else "")
            w r;
        ]
      else
        [
          Printf.sprintf
            "route: flat (fhw %.3f >= rho* %.3f: a decomposition cannot \
             beat the AGM exponent)"
            w r;
        ]
  | _ -> []

let build ?(compile = true) ?info ~forced engine db (q : Q.t) =
  let acyclic = Lb_relalg.Yannakakis.is_acyclic q in
  let info = match info with Some i -> i | None -> fhw_info ~acyclic q in
  let fhw = Option.map fst info in
  let rho, wcoj_exp = wcoj_exponent_or_atoms q in
  let compiled = if compile then lower_ir engine q else None in
  match engine with
  | Yannakakis ->
      mk ~forced ~acyclic ~rho ?fhw ~exponent:1.0
        ~why:
          [
            "query is alpha-acyclic: semijoin reduction caps every \
             intermediate by the output (O(input + output))";
          ]
        Yannakakis q
  | Generic_join ->
      mk ?compiled ~forced ~acyclic ~rho ?fhw ~exponent:wcoj_exp
        ~why:
          (Printf.sprintf
             "worst-case optimal: Generic Join runs in O(N^%.3f), the AGM \
              bound (Theorem 3.3)"
             wcoj_exp
          :: flat_route_line ~forced ~info ~rho)
        Generic_join q
  | Leapfrog ->
      mk ?compiled ~forced ~acyclic ~rho ?fhw ~exponent:wcoj_exp
        ~why:
          (Printf.sprintf
             "worst-case optimal: Leapfrog Triejoin runs in O(N^%.3f), the \
              AGM bound (Theorem 3.3); all atoms are binary, so sorted-key \
              leapfrogging applies directly"
             wcoj_exp
          :: flat_route_line ~forced ~info ~rho)
        Leapfrog q
  | Binary_hash ->
      let order, exponent =
        match Cost.binary_exponent db q with
        | Some (order, e) -> (Some order, e)
        | None -> (None, wcoj_exp)
      in
      let why =
        if List.length q <= 2 then
          [ "at most two atoms: a single hash join is already optimal" ]
        else
          [
            Printf.sprintf
              "left-deep hash joins in greedy order; intermediates can reach \
               N^%.3f on worst-case data (prefix AGM bound, Theorem 3.2)"
              exponent;
          ]
      in
      mk ?atom_order:order ~forced ~acyclic ~rho ?fhw ~exponent ~why Binary_hash
        q
  | Decomposed ->
      (* Forced on a shape the router skips (acyclic / < 3 atoms):
         compute the decomposition here; it is still correct, just not
         predicted to win. *)
      let w, td =
        match info with
        | Some (w, td) -> (w, td)
        | None -> Fhw.decomposition ~max_n:8 (Q.hypergraph q)
      in
      let rho_str =
        match rho with Some r -> Printf.sprintf "%.3f" r | None -> "undefined"
      in
      mk ~forced ~acyclic ~rho ~fhw:w ~decomposition:td ~exponent:w
        ~why:
          [
            Printf.sprintf
              "route: decomposition (fhw %.3f vs rho* %s): materialize %d \
               bags by worst-case-optimal join, each capped at N^%.3f \
               (Theorem 3.1), then Yannakakis over the join tree"
              w rho_str (Td.bag_count td) w;
          ]
        Decomposed q

let choose_engine ~info ~rho (q : Q.t) =
  if Lb_relalg.Yannakakis.is_acyclic q then Yannakakis
  else if List.length q <= 2 then Binary_hash
  else if decomposition_wins ~info ~rho then Decomposed
  else if max_arity q <= 2 then Leapfrog
  else Generic_join

let choose ?compile db q =
  let acyclic = Lb_relalg.Yannakakis.is_acyclic q in
  let info = fhw_info ~acyclic q in
  let rho = Cost.wcoj_exponent q in
  build ?compile ~info ~forced:false (choose_engine ~info ~rho q) db q

let plan_for ?compile engine db q =
  if engine = Yannakakis && not (Lb_relalg.Yannakakis.is_acyclic q) then
    Error "yannakakis requires an alpha-acyclic query"
  else if engine = Decomposed && q = [] then
    Error "decomposed requires a non-empty query"
  else Ok (build ?compile ~forced:true engine db q)
