(* Checkpoint files: one canonical-JSON document, CRC-framed with the
   WAL's framing (magic + length/payload/CRC), written atomically -
   build a temp file in the same directory, fsync it, rename over the
   target.  A crash during [write] leaves either the old snapshot or
   the new one, never a torn file; a torn or corrupt file reads as
   absent, so recovery falls back to the WAL alone. *)

let magic = "LBTSNP1\n"

let write ~path doc =
  let tmp = path ^ ".tmp" in
  let payload = Json.to_string doc in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let s = magic ^ Wal.frame payload in
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let w = ref 0 in
      while !w < n do
        w := !w + Unix.write fd b !w (n - !w)
      done;
      Unix.fsync fd);
  Sys.rename tmp path

(* --- columnar image sidecar (mmap'd snapshot read path) ---

   Next to the JSON snapshot the server writes a raw columnar image of
   the catalog: per relation, the lexicographically sorted trie columns
   as native-int words.  Recovery [Unix.map_file]s the data region and
   adopts zero-copy {!Lb_util.Column} views as trie levels, so a restart
   skips both the O(n log n) re-sort and the O(n) heap allocation - the
   kernel pages the data in lazily and the GC never sees it.

   The image is a cache, never the authority: its CRC-framed header
   carries a [stamp] (the digest of the JSON snapshot it was built
   from), and [read_image] returns [None] unless the caller's stamp
   matches - any mismatch, torn header, or short file falls back to the
   JSON path.  The data region itself is not checksummed; it is trusted
   exactly as far as the stamp ties it to the CRC'd JSON document.

   Layout: magic, one Wal-framed canonical-JSON header
   {stamp; rels: [{name; rows; cols; off}]} (off in words from the
   data region), zero padding to an 8-byte boundary, then the columns
   back to back (host endianness - this file never travels). *)

module Column = Lb_util.Column

let cols_magic = "LBTCOL1\n"

let cols_path path = path ^ ".cols"

let align8 n = (n + 7) land lnot 7

let map_ints fd ~pos ~len shared =
  Column.of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int Bigarray.c_layout
       shared [| len |])

let write_image ~path ~stamp rels =
  let path = cols_path path in
  let tmp = path ^ ".tmp" in
  let off = ref 0 in
  let metas =
    List.map
      (fun (name, nrows, cols) ->
        let o = !off in
        off := !off + (nrows * Array.length cols);
        Json.Obj
          [
            ("name", Json.String name);
            ("rows", Json.Int nrows);
            ("cols", Json.Int (Array.length cols));
            ("off", Json.Int o);
          ])
      rels
  in
  let total = !off in
  let header =
    Json.to_string
      (Json.Obj [ ("stamp", Json.String stamp); ("rels", Json.List metas) ])
  in
  let prefix = cols_magic ^ Wal.frame header in
  let data_off = align8 (String.length prefix) in
  let fd = Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.make data_off '\000' in
      Bytes.blit_string prefix 0 b 0 (String.length prefix);
      let n = Bytes.length b in
      let w = ref 0 in
      while !w < n do
        w := !w + Unix.write fd b !w (n - !w)
      done;
      if total > 0 then begin
        let dst = map_ints fd ~pos:data_off ~len:total true in
        let p = ref 0 in
        List.iter
          (fun (_, nrows, cols) ->
            Array.iter
              (fun col ->
                Column.blit ~src:col ~src_pos:0 ~dst ~dst_pos:!p ~len:nrows;
                p := !p + nrows)
              cols)
          rels
      end;
      Unix.fsync fd);
  Sys.rename tmp path

let read_image ~path ~stamp =
  let path = cols_path path in
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let size = (Unix.fstat fd).Unix.st_size in
          let m = String.length cols_magic in
          (* the header is small; read a bounded prefix through the
             normal IO path, then map only the data region *)
          let pre_len = min size (m + 65536) in
          let pre = Bytes.create pre_len in
          let r = ref 0 in
          (try
             while !r < pre_len do
               let k = Unix.read fd pre !r (pre_len - !r) in
               if k = 0 then raise Exit;
               r := !r + k
             done
           with Exit -> ());
          let pre = Bytes.sub_string pre 0 !r in
          if String.length pre < m || String.sub pre 0 m <> cols_magic then None
          else
            match Wal.unframe pre m with
            | None -> None
            | Some (header, next) -> (
                match Json.parse header with
                | exception Json.Parse_error _ -> None
                | doc -> (
                    let data_off = align8 next in
                    match
                      (Json.string_field "stamp" doc, Json.member "rels" doc)
                    with
                    | Ok s, Some (Json.List metas) when s = stamp -> (
                        try
                          let rels =
                            List.map
                              (fun meta ->
                                let req f =
                                  match Json.int_field f meta with
                                  | Ok v when v >= 0 -> v
                                  | _ -> raise Exit
                                in
                                let name =
                                  match Json.string_field "name" meta with
                                  | Ok n -> n
                                  | Error _ -> raise Exit
                                in
                                (name, req "rows", req "cols", req "off"))
                              metas
                          in
                          let total =
                            List.fold_left
                              (fun acc (_, rows, cols, off) ->
                                if off <> acc then raise Exit;
                                acc + (rows * cols))
                              0 rels
                          in
                          if data_off + (8 * total) > size then None
                          else begin
                            let data =
                              if total = 0 then Column.empty
                              else map_ints fd ~pos:data_off ~len:total false
                            in
                            Some
                              (List.map
                                 (fun (name, nrows, ncols, off) ->
                                   ( name,
                                     nrows,
                                     Array.init ncols (fun d ->
                                         Column.sub data
                                           (off + (d * nrows))
                                           nrows) ))
                                 rels)
                          end
                        with Exit -> None)
                    | _ -> None)))

let read path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let m = String.length magic in
      if String.length s < m || String.sub s 0 m <> magic then None
      else
        match Wal.unframe s m with
        | None -> None
        | Some (payload, next) when next = String.length s -> (
            match Json.parse payload with
            | exception Json.Parse_error _ -> None
            | doc -> Some doc)
        | Some _ -> None
