(* Checkpoint files: one canonical-JSON document, CRC-framed with the
   WAL's framing (magic + length/payload/CRC), written atomically -
   build a temp file in the same directory, fsync it, rename over the
   target.  A crash during [write] leaves either the old snapshot or
   the new one, never a torn file; a torn or corrupt file reads as
   absent, so recovery falls back to the WAL alone. *)

let magic = "LBTSNP1\n"

let write ~path doc =
  let tmp = path ^ ".tmp" in
  let payload = Json.to_string doc in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let s = magic ^ Wal.frame payload in
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let w = ref 0 in
      while !w < n do
        w := !w + Unix.write fd b !w (n - !w)
      done;
      Unix.fsync fd);
  Sys.rename tmp path

let read path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let m = String.length magic in
      if String.length s < m || String.sub s 0 m <> magic then None
      else
        match Wal.unframe s m with
        | None -> None
        | Some (payload, next) when next = String.length s -> (
            match Json.parse payload with
            | exception Json.Parse_error _ -> None
            | doc -> Some doc)
        | Some _ -> None
