(** Leapfrog Triejoin (Veldhuizen): the second worst-case-optimal join
    of Theorem 3.3.  The per-variable intersection leapfrogs sorted key
    streams over columnar tries, seeking each iterator to the current
    maximum by galloping search from its position.  [count]/[answer]
    accept a {!Lb_util.Pool} to run Domain-parallel with results and
    counter totals identical to a sequential run.

    Resource governance mirrors {!Generic_join}: [?budget] is ticked
    once per agreed key and per seek (raising
    {!Lb_util.Budget.Budget_exhausted} when spent, on every domain of a
    parallel run); [?metrics] receives the per-call [leapfrog.seeks] /
    [leapfrog.emitted] deltas. *)

type counters = { mutable seeks : int; mutable emitted : int }

val fresh_counters : unit -> counters

(** Same contract as {!Generic_join.iter}. *)
val iter :
  ?order:string array ->
  ?counters:counters ->
  ?budget:Lb_util.Budget.t ->
  ?metrics:Lb_util.Metrics.t ->
  Database.t ->
  Query.t ->
  (int array -> unit) ->
  unit

val answer :
  ?order:string array ->
  ?budget:Lb_util.Budget.t ->
  ?metrics:Lb_util.Metrics.t ->
  ?pool:Lb_util.Pool.t ->
  Database.t ->
  Query.t ->
  Relation.t

val count :
  ?order:string array ->
  ?counters:counters ->
  ?budget:Lb_util.Budget.t ->
  ?metrics:Lb_util.Metrics.t ->
  ?pool:Lb_util.Pool.t ->
  Database.t ->
  Query.t ->
  int

(** [count] with budget exhaustion reified as [Exhausted]. *)
val count_bounded :
  ?order:string array ->
  ?counters:counters ->
  ?budget:Lb_util.Budget.t ->
  ?metrics:Lb_util.Metrics.t ->
  ?pool:Lb_util.Pool.t ->
  Database.t ->
  Query.t ->
  int Lb_util.Budget.outcome

exception Found

val exists :
  ?order:string array -> ?budget:Lb_util.Budget.t -> Database.t -> Query.t -> bool
