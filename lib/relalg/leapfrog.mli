(** Leapfrog Triejoin (Veldhuizen): the second worst-case-optimal join
    of Theorem 3.3.  The per-variable intersection leapfrogs sorted key
    streams over columnar tries, seeking each iterator to the current
    maximum by galloping search from its position.  [count]/[answer]
    accept a {!Lb_util.Pool} to run Domain-parallel with results and
    counter totals identical to a sequential run. *)

type counters = { mutable seeks : int; mutable emitted : int }

val fresh_counters : unit -> counters

(** Same contract as {!Generic_join.iter}. *)
val iter :
  ?order:string array ->
  ?counters:counters ->
  Database.t ->
  Query.t ->
  (int array -> unit) ->
  unit

val answer :
  ?order:string array ->
  ?pool:Lb_util.Pool.t ->
  Database.t ->
  Query.t ->
  Relation.t

val count :
  ?order:string array ->
  ?counters:counters ->
  ?pool:Lb_util.Pool.t ->
  Database.t ->
  Query.t ->
  int

exception Found

val exists : ?order:string array -> Database.t -> Query.t -> bool
