(** Leapfrog Triejoin (Veldhuizen): the second worst-case-optimal join
    of Theorem 3.3.  The per-variable intersection leapfrogs sorted key
    streams over columnar tries, seeking each iterator to the current
    maximum by galloping search from its position.  [count]/[answer]
    accept a {!Lb_util.Pool} to run Domain-parallel with results and
    counter totals identical to a sequential run.

    Resource governance mirrors {!Generic_join}: the budget is ticked
    once per agreed key and per seek (raising
    {!Lb_util.Budget.Budget_exhausted} when spent, on every domain of a
    parallel run); the metrics sink receives the per-call
    [leapfrog.seeks] / [leapfrog.emitted] deltas and one
    [leapfrog.trie_builds] tick per execution context built.

    As in {!Generic_join}, resources are passed as a single [?ctx]
    ({!Lb_util.Exec.t}); the [?pool] / [?budget] / [?metrics] labelled
    arguments live on in {!Legacy} under a [deprecated] alert, an
    explicit one overriding the corresponding [ctx] field. *)

type counters = { mutable seeks : int; mutable emitted : int }

val fresh_counters : unit -> counters

(** Same contract as {!Generic_join.iter}. *)
val iter :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  (int array -> unit) ->
  unit

val answer :
  ?order:string array ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  Relation.t

val count :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  int

(** [count] with budget exhaustion reified as [Exhausted]. *)
val count_bounded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  int Lb_util.Budget.outcome

exception Found

val exists :
  ?order:string array ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  bool

(** Same contract as {!Generic_join.Legacy}: the pre-{!Lb_util.Exec}
    resource-triple entry points, alerted so new call sites use [?ctx]. *)
module Legacy : sig
  val iter :
    ?order:string array ->
    ?counters:counters ->
    ?ctx:Lb_util.Exec.t ->
    ?budget:Lb_util.Budget.t ->
    ?metrics:Lb_util.Metrics.t ->
    Database.t ->
    Query.t ->
    (int array -> unit) ->
    unit
  [@@alert deprecated "pass ?ctx (Lb_util.Exec.make) instead"]

  val answer :
    ?order:string array ->
    ?ctx:Lb_util.Exec.t ->
    ?budget:Lb_util.Budget.t ->
    ?metrics:Lb_util.Metrics.t ->
    ?pool:Lb_util.Pool.t ->
    Database.t ->
    Query.t ->
    Relation.t
  [@@alert deprecated "pass ?ctx (Lb_util.Exec.make) instead"]

  val count :
    ?order:string array ->
    ?counters:counters ->
    ?ctx:Lb_util.Exec.t ->
    ?budget:Lb_util.Budget.t ->
    ?metrics:Lb_util.Metrics.t ->
    ?pool:Lb_util.Pool.t ->
    Database.t ->
    Query.t ->
    int
  [@@alert deprecated "pass ?ctx (Lb_util.Exec.make) instead"]

  val count_bounded :
    ?order:string array ->
    ?counters:counters ->
    ?ctx:Lb_util.Exec.t ->
    ?budget:Lb_util.Budget.t ->
    ?metrics:Lb_util.Metrics.t ->
    ?pool:Lb_util.Pool.t ->
    Database.t ->
    Query.t ->
    int Lb_util.Budget.outcome
  [@@alert deprecated "pass ?ctx (Lb_util.Exec.make) instead"]

  val exists :
    ?order:string array ->
    ?ctx:Lb_util.Exec.t ->
    ?budget:Lb_util.Budget.t ->
    Database.t ->
    Query.t ->
    bool
  [@@alert deprecated "pass ?ctx (Lb_util.Exec.make) instead"]
end

(** Sharded driver; same contract and determinism guarantees as
    {!Generic_join.run_sharded}, with the level-0 leapfrog emulated over
    the merged per-shard key streams. *)
val run_sharded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  ?partition:(Query.atom -> col:int -> Relation.t array option) ->
  ?view:Shard.view ->
  shards:int ->
  Database.t ->
  Query.t ->
  Relation.t

val count_sharded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  ?partition:(Query.atom -> col:int -> Relation.t array option) ->
  ?view:Shard.view ->
  shards:int ->
  Database.t ->
  Query.t ->
  int
