(** Leapfrog Triejoin (Veldhuizen): the second worst-case-optimal join
    of Theorem 3.3.  The per-variable intersection leapfrogs sorted key
    streams over columnar tries, seeking each iterator to the current
    maximum by galloping search from its position.  [count]/[answer]
    accept a {!Lb_util.Pool} to run Domain-parallel with results and
    counter totals identical to a sequential run.

    Resource governance mirrors {!Generic_join}: the budget is ticked
    once per agreed key and per seek (raising
    {!Lb_util.Budget.Budget_exhausted} when spent, on every domain of a
    parallel run); the metrics sink receives the per-call
    [leapfrog.seeks] / [leapfrog.emitted] deltas and one
    [leapfrog.trie_builds] tick per execution context built.

    As in {!Generic_join}, resources are passed as a single [?ctx]
    ({!Lb_util.Exec.t}); see {!Lb_util.Exec.make}. *)

type counters = { mutable seeks : int; mutable emitted : int }

val fresh_counters : unit -> counters

(** Same contract as {!Generic_join.iter}. *)
val iter :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  (int array -> unit) ->
  unit

val answer :
  ?order:string array ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  Relation.t

val count :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  int

(** [count] with budget exhaustion reified as [Exhausted]. *)
val count_bounded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  int Lb_util.Budget.outcome

exception Found

val exists :
  ?order:string array ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  bool

(** Distributed-participant slice; same contract as
    {!Generic_join.subset}. *)
type subset = { owned : int -> bool; lead : bool }

val all_shards : subset

(** Sharded driver; same contract and determinism guarantees as
    {!Generic_join.run_sharded}, with the level-0 leapfrog emulated over
    the merged per-shard key streams. *)
val run_sharded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  ?partition:(Query.atom -> col:int -> Relation.t array option) ->
  ?view:Shard.view ->
  ?subset:subset ->
  shards:int ->
  Database.t ->
  Query.t ->
  Relation.t

val count_sharded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  ?partition:(Query.atom -> col:int -> Relation.t array option) ->
  ?view:Shard.view ->
  ?subset:subset ->
  shards:int ->
  Database.t ->
  Query.t ->
  int
