(** Sorted columnar tries over a global attribute order: the shared
    relation view of both worst-case-optimal joins.  A trie node is a
    row range at a depth; storage is one flat off-heap
    {!Lb_util.Column} per level (struct-of-arrays, unboxed, invisible
    to the GC), built by a monomorphic lexicographic sort; navigation
    is galloping search (LFTJ's "seek"). *)

type t

val attrs : t -> string array

val depth_count : t -> int

val row_count : t -> int

(** The sorted column at a depth.  Exposed for the join engines' hot
    loops; callers must not mutate it. *)
val column : t -> int -> Lb_util.Column.t

(** Permute the relation's columns into the order induced by the global
    [order] and sort lexicographically.  Raises if some attribute is
    missing from [order].  [scratch] backs the sort's temporaries
    (released before returning); without it they are fresh off-heap
    columns. *)
val build : ?scratch:Lb_util.Arena.t -> order:string array -> Relation.t -> t

(** Trusted constructor: [rows] must already be lexicographically
    sorted, duplicate-free, and of width [|attrs|] - no sort, no dedup,
    O(n * width).  The delta-trie compaction and the catalog's write
    path produce exactly this shape. *)
val of_sorted_rows : string array -> int array array -> t

(** Trusted zero-copy constructor: adopt pre-sorted columns (typically
    views into an mmap'd snapshot) as the trie levels.  Every column
    must have length [nrows]; the implied rows must be sorted and
    distinct.  Nothing is copied or validated beyond the lengths. *)
val of_columns : string array -> nrows:int -> Lb_util.Column.t array -> t

(** [gallop_geq col lo hi v] is the first index in [\[lo, hi)] with
    [col.(i) >= v] ([hi] if none), by exponential search from [lo]: the
    cost is logarithmic in the distance advanced, so repeated seeks with
    a moving cursor are amortized.  Probes are unchecked; [\[lo, hi)]
    must lie within the column. *)
val gallop_geq : Lb_util.Column.t -> int -> int -> int -> int

(** Same with [col.(i) > v]. *)
val gallop_gt : Lb_util.Column.t -> int -> int -> int -> int

(** First index in [\[lo, hi)] whose key at [depth] is [>= v]. *)
val lower_bound : t -> depth:int -> lo:int -> hi:int -> int -> int

(** First index in [\[lo, hi)] whose key at [depth] is [> v]. *)
val upper_bound : t -> depth:int -> lo:int -> hi:int -> int -> int

(** Child range for value [v], if nonempty. *)
val narrow : t -> depth:int -> lo:int -> hi:int -> int -> (int * int) option

(** Iterate the distinct keys in a range with each key's child range. *)
val iter_keys :
  t -> depth:int -> lo:int -> hi:int -> (int -> int -> int -> unit) -> unit

val key_at : t -> depth:int -> int -> int

val distinct_key_count : t -> depth:int -> lo:int -> hi:int -> int
