(* The plan compilation tier: lower a WCOJ plan to a monomorphic loop
   nest over flat int arrays.

   The interpreted engines (Generic_join, Leapfrog) already precompute
   their participant structure per execution, but they recompute it on
   every call, thread options through the hot path, and pay a bounds
   check on every column access.  This module splits the work into the
   two halves the LogicBlox lineage (Veldhuizen) compiles between:

   - [lower] runs once per plan and produces a schema-level IR: for
     each variable of the global order, the flat list of (atom, trie
     depth) bindings that participate at that level.  The IR depends
     only on the query and the order - never on the data - so it lives
     in the server's plan LRU and amortizes across the batch window.
   - [make_mach] runs once per execution and resolves the IR against
     freshly built tries: every (atom, depth) binding becomes a direct
     pointer to one sorted int column.  The interpreters then run a
     monomorphic loop nest with [Array.unsafe_get] on the hot path -
     no closures, no option matches per column access, no Trie module
     indirection.

   Contract: answers, work counters (intersections / seeks / emitted)
   and budget-tick placement are bit-identical to the interpreted
   engines on every driver - sequential, Domain-parallel and sharded -
   including the partial counters left behind when a budget fires
   mid-query.  The differential suite in test/test_compile.ml holds
   this line; any divergence is a bug in this file.

   Depth resolution without tries: an atom's trie levels are its
   distinct attributes (first-appearance order, as Query.bind_atom
   projects) sorted by global-order position (as Trie.build sorts), so
   the depth of a variable in an atom is its rank among that atom's
   distinct attributes ordered by position - computable from the
   schema alone.  [make_mach] asserts the resolution against the real
   tries it builds. *)

module Pool = Lb_util.Pool
module Budget = Lb_util.Budget
module Metrics = Lb_util.Metrics
module Exec = Lb_util.Exec
module Column = Lb_util.Column

type engine = Generic | Leapfrog

let engine_name = function Generic -> "generic_join" | Leapfrog -> "leapfrog"

(* [work] counts the engine's unit of intersection effort: enumerated
   leader keys for Generic, seeks for Leapfrog - the same quantities
   the interpreted counters track. *)
type counters = { mutable work : int; mutable emitted : int }

let fresh_counters () = { work = 0; emitted = 0 }

(* --- the IR --- *)

type ir = {
  engine : engine;
  order : string array;
  nvars : int;
  natoms : int;
  rels : string array; (* atom relation symbols, parallel to atom ids *)
  lv_off : int array; (* nvars+1: level l owns slots [lv_off.(l), lv_off.(l+1)) *)
  lv_atom : int array; (* slot -> participating atom id (ascending per level) *)
  lv_depth : int array; (* slot -> that atom's trie depth for the level *)
}

let weight ir =
  Array.length ir.lv_off + (2 * Array.length ir.lv_atom) + ir.nvars + ir.natoms

let lower ~engine ?order (q : Query.t) =
  let order = match order with Some o -> o | None -> Query.attributes q in
  let atoms = Array.of_list q in
  let natoms = Array.length atoms in
  let nvars = Array.length order in
  let position = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace position x i) order;
  (* per atom: distinct attrs sorted by order position = its trie levels *)
  let trie_attrs =
    Array.map
      (fun (a : Query.atom) ->
        let seen = Hashtbl.create 8 in
        let distinct = ref [] in
        Array.iter
          (fun x ->
            if not (Hashtbl.mem seen x) then begin
              Hashtbl.replace seen x ();
              distinct := x :: !distinct
            end)
          a.Query.attrs;
        let arr = Array.of_list (List.rev !distinct) in
        let pos x =
          match Hashtbl.find_opt position x with
          | Some p -> p
          | None ->
              invalid_arg ("Compile.lower: attribute not in order: " ^ x)
        in
        Array.sort (fun x y -> compare (pos x) (pos y)) arr;
        arr)
      atoms
  in
  let lv_off = Array.make (nvars + 1) 0 in
  let slots = ref [] and nslots = ref 0 in
  for l = 0 to nvars - 1 do
    lv_off.(l) <- !nslots;
    let var = order.(l) in
    for i = 0 to natoms - 1 do
      let ats = trie_attrs.(i) in
      for d = 0 to Array.length ats - 1 do
        if ats.(d) = var then begin
          slots := (i, d) :: !slots;
          incr nslots
        end
      done
    done;
    if !nslots = lv_off.(l) then
      invalid_arg "Compile.lower: variable missing from all atoms"
  done;
  lv_off.(nvars) <- !nslots;
  let slots = Array.of_list (List.rev !slots) in
  {
    engine;
    order;
    nvars;
    natoms;
    rels = Array.map (fun (a : Query.atom) -> a.Query.rel) atoms;
    lv_off;
    lv_atom = Array.map fst slots;
    lv_depth = Array.map snd slots;
  }

let describe ir =
  let lines = ref [] in
  for l = ir.nvars - 1 downto 0 do
    let slots =
      List.init
        (ir.lv_off.(l + 1) - ir.lv_off.(l))
        (fun j ->
          let s = ir.lv_off.(l) + j in
          Printf.sprintf "%s#%d@%d"
            ir.rels.(ir.lv_atom.(s))
            ir.lv_atom.(s) ir.lv_depth.(s))
    in
    lines :=
      Printf.sprintf "level %d %s: %s" l ir.order.(l)
        (String.concat " " slots)
      :: !lines
  done;
  Printf.sprintf "compiled %s loop nest: %d vars, %d atoms, %d bindings"
    (engine_name ir.engine) ir.nvars ir.natoms
    (Array.length ir.lv_atom)
  :: !lines

(* --- metric names (shared with the interpreted engines, so served
   counters are indistinguishable) --- *)

let trie_builds_name = function
  | Generic -> "generic_join.trie_builds"
  | Leapfrog -> "leapfrog.trie_builds"

let work_name = function
  | Generic -> "generic_join.intersections"
  | Leapfrog -> "leapfrog.seeks"

let emitted_name = function
  | Generic -> "generic_join.emitted"
  | Leapfrog -> "leapfrog.emitted"

let with_metrics engine metrics c f =
  let w0 = c.work and e0 = c.emitted in
  Fun.protect
    ~finally:(fun () ->
      Metrics.add metrics (work_name engine) (c.work - w0);
      Metrics.add metrics (emitted_name engine) (c.emitted - e0))
    f

(* --- unsafe galloping search (same algorithm as Trie.gallop_*, with
   the bounds checks compiled away; callers guarantee [lo, hi) is a
   valid range of [col]) --- *)

let ugallop_geq (col : Column.t) lo hi v =
  if lo >= hi then hi
  else if Column.unsafe_get col lo >= v then lo
  else begin
    let base = ref lo and step = ref 1 in
    while !base + !step < hi && Column.unsafe_get col (!base + !step) < v do
      base := !base + !step;
      step := !step * 2
    done;
    let l = ref (!base + 1) and h = ref (min (!base + !step) hi) in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      if Column.unsafe_get col mid < v then l := mid + 1 else h := mid
    done;
    !l
  end

let ugallop_gt (col : Column.t) lo hi v =
  if lo >= hi then hi
  else if Column.unsafe_get col lo > v then lo
  else begin
    let base = ref lo and step = ref 1 in
    while !base + !step < hi && Column.unsafe_get col (!base + !step) <= v do
      base := !base + !step;
      step := !step * 2
    done;
    let l = ref (!base + 1) and h = ref (min (!base + !step) hi) in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      if Column.unsafe_get col mid <= v then l := mid + 1 else h := mid
    done;
    !l
  end

(* --- the machine: an IR resolved against concrete tries --- *)

type mach = {
  eng : engine;
  nvars : int;
  natoms : int;
  tries : Trie.t array;
  off : int array; (* = ir.lv_off *)
  atom : int array; (* = ir.lv_atom *)
  cols : Column.t array; (* slot -> the resolved sorted column *)
  bud : Budget.t option;
}

let mach_of_tries ?budget ir tries =
  let n = Array.length ir.lv_atom in
  let cols = Array.make n Column.empty in
  for l = 0 to ir.nvars - 1 do
    for s = ir.lv_off.(l) to ir.lv_off.(l + 1) - 1 do
      let t = tries.(ir.lv_atom.(s)) in
      (* schema-level depth resolution must agree with the trie the
         data actually built *)
      assert ((Trie.attrs t).(ir.lv_depth.(s)) = ir.order.(l));
      cols.(s) <- Trie.column t ir.lv_depth.(s)
    done
  done;
  {
    eng = ir.engine;
    nvars = ir.nvars;
    natoms = ir.natoms;
    tries;
    off = ir.lv_off;
    atom = ir.lv_atom;
    cols;
    bud = budget;
  }

(* One logical trie build per execution (the unit the server's batch
   scheduler asserts sharing on), pool-parallel like the interpreted
   [make_ctx]. *)
let make_mach ?pool ?budget ?(metrics = Metrics.disabled) ir db (q : Query.t) =
  Metrics.incr metrics (trie_builds_name ir.engine);
  let atoms = Array.of_list q in
  let natoms = Array.length atoms in
  let build i = Trie.build ~order:ir.order (Query.bind_atom db atoms.(i)) in
  let tries =
    match pool with
    | Some p when Pool.size p > 1 && natoms > 1 ->
        let out = Array.make natoms None in
        Pool.run p ~chunks:natoms (fun i -> out.(i) <- Some (build i));
        Array.map Option.get out
    | _ -> Array.init natoms build
  in
  mach_of_tries ?budget ir tries

let has_empty_atom m =
  let e = ref false in
  Array.iter (fun t -> if Trie.row_count t = 0 then e := true) m.tries;
  !e

(* --- per-domain workspace (same layout as the engines') --- *)

type ws = {
  stack : int array array;
  cursors : int array array;
  assignment : int array;
}

let make_ws m =
  {
    stack =
      Array.init (m.nvars + 1) (fun _ -> Array.make (max 1 (2 * m.natoms)) 0);
    cursors = Array.init (max 1 m.nvars) (fun _ -> Array.make (max 1 m.natoms) 0);
    assignment = Array.make (max 1 m.nvars) 0;
  }

let init_root m ws =
  let st = ws.stack.(0) in
  for i = 0 to m.natoms - 1 do
    st.(2 * i) <- 0;
    st.(2 * i + 1) <- Trie.row_count m.tries.(i)
  done

(* --- the Generic Join loop nest ---

   Mirrors Generic_join.enumerate step for step (leader = smallest
   range, first wins; one [c.work] increment and budget tick per
   enumerated leader key; forward-only probe cursors; early abort on an
   exhausted stream), with every column access unsafe and the level
   tables read from the flat slot arrays. *)

let rec enum_gj m ws c ~level ~stop emit =
  if level >= stop then emit ()
  else begin
    let base = Array.unsafe_get m.off level in
    let np = Array.unsafe_get m.off (level + 1) - base in
    let st = Array.unsafe_get ws.stack level
    and st' = Array.unsafe_get ws.stack (level + 1) in
    (* The two shapes that dominate real plans collapse to straight-line
       code; every variant replays the generic scan exactly (leader =
       smallest range with ties to the lowest slot, one work unit and
       budget tick per enumerated leader key), so counters cannot tell
       them apart.  At the last level the next range table is never
       read, so the leaf variants skip the range copy, the st' writes,
       and the upper-bound gallops that exist only to fill them - none
       of which are counted units of work.  Only when [stop] is the
       machine's last level, though: prefix runs (task generation for
       the parallel drivers) read [stack.(stop)] after the emit. *)
    if level = stop - 1 && stop = m.nvars && np <= 2 then begin
      if np = 1 then leaf_gj1 m ws c ~level base st emit
      else leaf_gj2 m ws c ~level base st emit
    end
    else begin
      (* inline copy: 2*natoms ints is too small for a blit's C call *)
      for i = 0 to (2 * m.natoms) - 1 do
        Array.unsafe_set st' i (Array.unsafe_get st i)
      done;
      if np = 1 then enum_gj1 m ws c ~level ~stop base st st' emit
      else if np = 2 then enum_gj2 m ws c ~level ~stop base st st' emit
      else enum_gjn m ws c ~level ~stop base np st st' emit
    end
  end

and leaf_gj1 m ws c ~level base st emit =
  let a = Array.unsafe_get m.atom base in
  let col = Array.unsafe_get m.cols base in
  let hi = Array.unsafe_get st ((2 * a) + 1) in
  let pos = ref (Array.unsafe_get st (2 * a)) in
  while !pos < hi do
    let v = Column.unsafe_get col !pos in
    let e = ugallop_gt col !pos hi v in
    c.work <- c.work + 1;
    (match m.bud with Some b -> Budget.tick b | None -> ());
    Array.unsafe_set ws.assignment level v;
    emit ();
    pos := e
  done

and leaf_gj2 m ws c ~level base st emit =
  let a0 = Array.unsafe_get m.atom base in
  let a1 = Array.unsafe_get m.atom (base + 1) in
  let s0 = Array.unsafe_get st ((2 * a0) + 1) - Array.unsafe_get st (2 * a0) in
  let s1 = Array.unsafe_get st ((2 * a1) + 1) - Array.unsafe_get st (2 * a1) in
  let la, oa, lcol, ocol =
    if s1 < s0 then
      (a1, a0, Array.unsafe_get m.cols (base + 1), Array.unsafe_get m.cols base)
    else
      (a0, a1, Array.unsafe_get m.cols base, Array.unsafe_get m.cols (base + 1))
  in
  let lhi = Array.unsafe_get st ((2 * la) + 1) in
  let ohi = Array.unsafe_get st ((2 * oa) + 1) in
  let ocur = ref (Array.unsafe_get st (2 * oa)) in
  let pos = ref (Array.unsafe_get st (2 * la)) in
  let dead = ref false in
  while (not !dead) && !pos < lhi do
    let v = Column.unsafe_get lcol !pos in
    let e = ugallop_gt lcol !pos lhi v in
    c.work <- c.work + 1;
    (match m.bud with Some b -> Budget.tick b | None -> ());
    let p = ugallop_geq ocol !ocur ohi v in
    ocur := p;
    if p >= ohi then dead := true
    else if Column.unsafe_get ocol p = v then begin
      Array.unsafe_set ws.assignment level v;
      emit ()
    end;
    pos := e
  done

(* single participant: every key in range is a candidate and always
   survives (the generic probe loop has no other stream to consult) *)
and enum_gj1 m ws c ~level ~stop base st st' emit =
  let a = Array.unsafe_get m.atom base in
  let col = Array.unsafe_get m.cols base in
  let hi = Array.unsafe_get st ((2 * a) + 1) in
  let pos = ref (Array.unsafe_get st (2 * a)) in
  while !pos < hi do
    let v = Column.unsafe_get col !pos in
    let e = ugallop_gt col !pos hi v in
    c.work <- c.work + 1;
    (match m.bud with Some b -> Budget.tick b | None -> ());
    Array.unsafe_set st' (2 * a) !pos;
    Array.unsafe_set st' ((2 * a) + 1) e;
    Array.unsafe_set ws.assignment level v;
    enum_gj m ws c ~level:(level + 1) ~stop emit;
    pos := e
  done

(* two participants: the leader choice is one comparison and the probe
   loop is a single forward gallop against the other stream *)
and enum_gj2 m ws c ~level ~stop base st st' emit =
  let a0 = Array.unsafe_get m.atom base in
  let a1 = Array.unsafe_get m.atom (base + 1) in
  let s0 = Array.unsafe_get st ((2 * a0) + 1) - Array.unsafe_get st (2 * a0) in
  let s1 = Array.unsafe_get st ((2 * a1) + 1) - Array.unsafe_get st (2 * a1) in
  (* strict less: a tie keeps slot 0 as leader, like the generic scan *)
  let la, oa, lcol, ocol =
    if s1 < s0 then
      (a1, a0, Array.unsafe_get m.cols (base + 1), Array.unsafe_get m.cols base)
    else
      (a0, a1, Array.unsafe_get m.cols base, Array.unsafe_get m.cols (base + 1))
  in
  let lhi = Array.unsafe_get st ((2 * la) + 1) in
  let ohi = Array.unsafe_get st ((2 * oa) + 1) in
  let ocur = ref (Array.unsafe_get st (2 * oa)) in
  let pos = ref (Array.unsafe_get st (2 * la)) in
  let dead = ref false in
  while (not !dead) && !pos < lhi do
    let v = Column.unsafe_get lcol !pos in
    let e = ugallop_gt lcol !pos lhi v in
    c.work <- c.work + 1;
    (match m.bud with Some b -> Budget.tick b | None -> ());
    let p = ugallop_geq ocol !ocur ohi v in
    ocur := p;
    if p >= ohi then dead := true
    else if Column.unsafe_get ocol p = v then begin
      Array.unsafe_set st' (2 * oa) p;
      Array.unsafe_set st' ((2 * oa) + 1) (ugallop_gt ocol p ohi v);
      Array.unsafe_set st' (2 * la) !pos;
      Array.unsafe_set st' ((2 * la) + 1) e;
      Array.unsafe_set ws.assignment level v;
      enum_gj m ws c ~level:(level + 1) ~stop emit
    end;
    pos := e
  done

(* the general shape, any participant count *)
and enum_gjn m ws c ~level ~stop base np st st' emit =
  begin
    let lj = ref 0 and lsize = ref max_int in
    for j = 0 to np - 1 do
      let i = Array.unsafe_get m.atom (base + j) in
      let s =
        Array.unsafe_get st ((2 * i) + 1) - Array.unsafe_get st (2 * i)
      in
      if s < !lsize then begin
        lsize := s;
        lj := j
      end
    done;
    let lj = !lj in
    let leader = Array.unsafe_get m.atom (base + lj) in
    let lcol = Array.unsafe_get m.cols (base + lj) in
    let lhi = Array.unsafe_get st ((2 * leader) + 1) in
    let cur = Array.unsafe_get ws.cursors level in
    for j = 0 to np - 1 do
      Array.unsafe_set cur j
        (Array.unsafe_get st (2 * Array.unsafe_get m.atom (base + j)))
    done;
    let pos = ref (Array.unsafe_get st (2 * leader)) in
    let dead = ref false in
    while (not !dead) && !pos < lhi do
      let v = Column.unsafe_get lcol !pos in
      let e = ugallop_gt lcol !pos lhi v in
      c.work <- c.work + 1;
      (match m.bud with Some b -> Budget.tick b | None -> ());
      let ok = ref true in
      let j = ref 0 in
      while !ok && !j < np do
        if !j <> lj then begin
          let i = Array.unsafe_get m.atom (base + !j) in
          let col = Array.unsafe_get m.cols (base + !j) in
          let hi = Array.unsafe_get st ((2 * i) + 1) in
          let p = ugallop_geq col (Array.unsafe_get cur !j) hi v in
          Array.unsafe_set cur !j p;
          if p >= hi then begin
            ok := false;
            dead := true
          end
          else if Column.unsafe_get col p <> v then ok := false
          else begin
            Array.unsafe_set st' (2 * i) p;
            Array.unsafe_set st' ((2 * i) + 1) (ugallop_gt col p hi v)
          end
        end;
        incr j
      done;
      if !ok then begin
        Array.unsafe_set st' (2 * leader) !pos;
        Array.unsafe_set st' ((2 * leader) + 1) e;
        Array.unsafe_set ws.assignment level v;
        enum_gj m ws c ~level:(level + 1) ~stop emit
      end;
      pos := e
    done
  end

(* --- the Leapfrog loop nest ---

   Mirrors Leapfrog.enumerate: budget tick per agreed key, one
   [c.work] increment and tick per lagging-iterator seek with the
   in-loop [fin] guard. *)

let rec enum_lf m ws c ~level ~stop emit =
  if level >= stop then emit ()
  else begin
    let base = Array.unsafe_get m.off level in
    let np = Array.unsafe_get m.off (level + 1) - base in
    let st = Array.unsafe_get ws.stack level
    and st' = Array.unsafe_get ws.stack (level + 1) in
    if level = stop - 1 && stop = m.nvars && np = 2 then
      leaf_lf2 m ws c ~level base st emit
    else begin
      for i = 0 to (2 * m.natoms) - 1 do
        Array.unsafe_set st' i (Array.unsafe_get st i)
      done;
      if np = 2 then enum_lf2 m ws c ~level ~stop base st st' emit
      else enum_lfn m ws c ~level ~stop base np st st' emit
    end
  end

(* last level, two iterators: stack.(level+1) is never read, so the
   range copy and st' writes vanish; the agreement gallops stay (they
   advance the cursors) and every tick/work unit is replayed exactly *)
and leaf_lf2 m ws c ~level base st emit =
  let a0 = Array.unsafe_get m.atom base in
  let a1 = Array.unsafe_get m.atom (base + 1) in
  let col0 = Array.unsafe_get m.cols base in
  let col1 = Array.unsafe_get m.cols (base + 1) in
  let hi0 = Array.unsafe_get st ((2 * a0) + 1) in
  let hi1 = Array.unsafe_get st ((2 * a1) + 1) in
  let p0 = ref (Array.unsafe_get st (2 * a0)) in
  let p1 = ref (Array.unsafe_get st (2 * a1)) in
  let fin = ref (!p0 >= hi0 || !p1 >= hi1) in
  while not !fin do
    let k0 = Column.unsafe_get col0 !p0 in
    let k1 = Column.unsafe_get col1 !p1 in
    if k0 = k1 then begin
      (match m.bud with Some b -> Budget.tick b | None -> ());
      let e0 = ugallop_gt col0 !p0 hi0 k0 in
      let e1 = ugallop_gt col1 !p1 hi1 k0 in
      Array.unsafe_set ws.assignment level k0;
      emit ();
      p0 := e0;
      p1 := e1;
      if e0 >= hi0 || e1 >= hi1 then fin := true
    end
    else if k0 < k1 then begin
      c.work <- c.work + 1;
      (match m.bud with Some b -> Budget.tick b | None -> ());
      p0 := ugallop_geq col0 !p0 hi0 k1;
      if !p0 >= hi0 then fin := true
    end
    else begin
      c.work <- c.work + 1;
      (match m.bud with Some b -> Budget.tick b | None -> ());
      p1 := ugallop_geq col1 !p1 hi1 k0;
      if !p1 >= hi1 then fin := true
    end
  done

(* two iterators: the agreement test is one comparison, the lagging
   seek a single gallop - the generic loop's tick and work accounting
   (one tick per agreed key, one work unit + tick per lagging seek in
   ascending slot order) is replayed exactly *)
and enum_lf2 m ws c ~level ~stop base st st' emit =
  let a0 = Array.unsafe_get m.atom base in
  let a1 = Array.unsafe_get m.atom (base + 1) in
  let col0 = Array.unsafe_get m.cols base in
  let col1 = Array.unsafe_get m.cols (base + 1) in
  let hi0 = Array.unsafe_get st ((2 * a0) + 1) in
  let hi1 = Array.unsafe_get st ((2 * a1) + 1) in
  let p0 = ref (Array.unsafe_get st (2 * a0)) in
  let p1 = ref (Array.unsafe_get st (2 * a1)) in
  let fin = ref (!p0 >= hi0 || !p1 >= hi1) in
  while not !fin do
    let k0 = Column.unsafe_get col0 !p0 in
    let k1 = Column.unsafe_get col1 !p1 in
    if k0 = k1 then begin
      (match m.bud with Some b -> Budget.tick b | None -> ());
      let e0 = ugallop_gt col0 !p0 hi0 k0 in
      let e1 = ugallop_gt col1 !p1 hi1 k0 in
      Array.unsafe_set st' (2 * a0) !p0;
      Array.unsafe_set st' ((2 * a0) + 1) e0;
      Array.unsafe_set st' (2 * a1) !p1;
      Array.unsafe_set st' ((2 * a1) + 1) e1;
      Array.unsafe_set ws.assignment level k0;
      enum_lf m ws c ~level:(level + 1) ~stop emit;
      p0 := e0;
      p1 := e1;
      if e0 >= hi0 || e1 >= hi1 then fin := true
    end
    else if k0 < k1 then begin
      c.work <- c.work + 1;
      (match m.bud with Some b -> Budget.tick b | None -> ());
      p0 := ugallop_geq col0 !p0 hi0 k1;
      if !p0 >= hi0 then fin := true
    end
    else begin
      c.work <- c.work + 1;
      (match m.bud with Some b -> Budget.tick b | None -> ());
      p1 := ugallop_geq col1 !p1 hi1 k0;
      if !p1 >= hi1 then fin := true
    end
  done

(* the general shape, any iterator count *)
and enum_lfn m ws c ~level ~stop base np st st' emit =
  begin
    let pos = Array.unsafe_get ws.cursors level in
    let fin = ref false in
    for j = 0 to np - 1 do
      let i = Array.unsafe_get m.atom (base + j) in
      Array.unsafe_set pos j (Array.unsafe_get st (2 * i));
      if Array.unsafe_get st (2 * i) >= Array.unsafe_get st ((2 * i) + 1) then
        fin := true
    done;
    while not !fin do
      let k0 =
        Column.unsafe_get (Array.unsafe_get m.cols base) (Array.unsafe_get pos 0)
      in
      let kmax = ref k0 and kmin = ref k0 in
      for j = 1 to np - 1 do
        let k =
          Column.unsafe_get
            (Array.unsafe_get m.cols (base + j))
            (Array.unsafe_get pos j)
        in
        if k > !kmax then kmax := k;
        if k < !kmin then kmin := k
      done;
      if !kmin = !kmax then begin
        let v = !kmin in
        (match m.bud with Some b -> Budget.tick b | None -> ());
        for j = 0 to np - 1 do
          let i = Array.unsafe_get m.atom (base + j) in
          let e =
            ugallop_gt
              (Array.unsafe_get m.cols (base + j))
              (Array.unsafe_get pos j)
              (Array.unsafe_get st ((2 * i) + 1))
              v
          in
          Array.unsafe_set st' (2 * i) (Array.unsafe_get pos j);
          Array.unsafe_set st' ((2 * i) + 1) e
        done;
        Array.unsafe_set ws.assignment level v;
        enum_lf m ws c ~level:(level + 1) ~stop emit;
        for j = 0 to np - 1 do
          let i = Array.unsafe_get m.atom (base + j) in
          Array.unsafe_set pos j (Array.unsafe_get st' ((2 * i) + 1));
          if Array.unsafe_get pos j >= Array.unsafe_get st ((2 * i) + 1) then
            fin := true
        done
      end
      else begin
        let mx = !kmax in
        for j = 0 to np - 1 do
          if
            (not !fin)
            && Column.unsafe_get
                 (Array.unsafe_get m.cols (base + j))
                 (Array.unsafe_get pos j)
               < mx
          then begin
            c.work <- c.work + 1;
            (match m.bud with Some b -> Budget.tick b | None -> ());
            let i = Array.unsafe_get m.atom (base + j) in
            Array.unsafe_set pos j
              (ugallop_geq
                 (Array.unsafe_get m.cols (base + j))
                 (Array.unsafe_get pos j)
                 (Array.unsafe_get st ((2 * i) + 1))
                 mx);
            if Array.unsafe_get pos j >= Array.unsafe_get st ((2 * i) + 1)
            then fin := true
          end
        done
      end
    done
  end

let enum m ws c ~level ~stop emit =
  match m.eng with
  | Generic -> enum_gj m ws c ~level ~stop emit
  | Leapfrog -> enum_lf m ws c ~level ~stop emit

let run_seq m c f =
  if not (has_empty_atom m) then begin
    let ws = make_ws m in
    init_root m ws;
    enum m ws c ~level:0 ~stop:m.nvars (fun () ->
        c.emitted <- c.emitted + 1;
        f ws.assignment)
  end

(* --- Domain-parallel driver (same task scheme and counter-merge
   order as the engines') --- *)

type task = { plen : int; v0 : int; v1 : int; st : int array }

let split_threshold = 64

let push_task ws tasks n plen =
  incr n;
  tasks :=
    {
      plen;
      v0 = ws.assignment.(0);
      v1 = (if plen > 1 then ws.assignment.(1) else 0);
      st = Array.copy ws.stack.(plen);
    }
    :: !tasks

(* Heavy first values (smallest level-1 participant range above the
   threshold) are expanded one level deeper at discovery time - the
   interleaving matters, because budget ticks of the level-1 expansion
   must land between the level-0 candidates exactly as they do in the
   interpreted gen_tasks. *)
let heavy_at_1 m ws =
  m.nvars >= 2
  &&
  let base = m.off.(1) in
  let np = m.off.(2) - base in
  let st = ws.stack.(1) in
  let w = ref max_int in
  for j = 0 to np - 1 do
    let i = m.atom.(base + j) in
    let s = st.((2 * i) + 1) - st.(2 * i) in
    if s < !w then w := s
  done;
  !w > split_threshold

let gen_tasks m ws c =
  let tasks = ref [] and n = ref 0 in
  enum m ws c ~level:0 ~stop:1 (fun () ->
      if heavy_at_1 m ws then
        enum m ws c ~level:1 ~stop:2 (fun () -> push_task ws tasks n 2)
      else push_task ws tasks n 1);
  (!n, Array.of_list (List.rev !tasks))

let run_task m ws ck t ~consume acc =
  ws.assignment.(0) <- t.v0;
  if t.plen > 1 then ws.assignment.(1) <- t.v1;
  Array.blit t.st 0 ws.stack.(t.plen) 0 (2 * m.natoms);
  enum m ws ck ~level:t.plen ~stop:m.nvars (fun () ->
      ck.emitted <- ck.emitted + 1;
      consume acc ws.assignment)

let run_par m pool c ~make_acc ~consume =
  let gws = make_ws m in
  init_root m gws;
  let ntasks, tasks = gen_tasks m gws c in
  let per_chunk = max 1 (ntasks / (Pool.size pool * 8)) in
  let nchunks = (ntasks + per_chunk - 1) / per_chunk in
  let accs = Array.init nchunks (fun _ -> make_acc ()) in
  let ctrs = Array.init nchunks (fun _ -> fresh_counters ()) in
  Pool.run pool ~chunks:nchunks (fun k ->
      let ws = make_ws m in
      let ck = ctrs.(k) and acc = accs.(k) in
      let t1 = min ntasks ((k + 1) * per_chunk) in
      for ti = k * per_chunk to t1 - 1 do
        run_task m ws ck tasks.(ti) ~consume acc
      done);
  Array.iter
    (fun ck ->
      c.work <- c.work + ck.work;
      c.emitted <- c.emitted + ck.emitted)
    ctrs;
  accs

let pool_applies m = function
  | Some p when Pool.size p > 1 && m.nvars >= 2 -> Some p
  | _ -> None

(* --- public unsharded entry points --- *)

let count ?counters ?ctx ir db q =
  let ex = Exec.resolve ?ctx () in
  let c = match counters with Some c -> c | None -> fresh_counters () in
  let m =
    make_mach ?pool:ex.Exec.pool ?budget:ex.Exec.budget
      ~metrics:ex.Exec.metrics ir db q
  in
  with_metrics ir.engine ex.Exec.metrics c @@ fun () ->
  match pool_applies m ex.Exec.pool with
  | Some p when not (has_empty_atom m) ->
      let accs =
        run_par m p c ~make_acc:(fun () -> ref 0) ~consume:(fun r _ -> incr r)
      in
      Array.fold_left (fun acc r -> acc + !r) 0 accs
  | _ ->
      let n = ref 0 in
      run_seq m c (fun _ -> incr n);
      !n

let count_bounded ?counters ?ctx ir db q =
  Budget.protect (fun () -> count ?counters ?ctx ir db q)

let answer ?ctx ir db q =
  let ex = Exec.resolve ?ctx () in
  let c = fresh_counters () in
  let m =
    make_mach ?pool:ex.Exec.pool ?budget:ex.Exec.budget
      ~metrics:ex.Exec.metrics ir db q
  in
  let rows =
    with_metrics ir.engine ex.Exec.metrics c @@ fun () ->
    match pool_applies m ex.Exec.pool with
    | Some p when not (has_empty_atom m) ->
        let accs =
          run_par m p c
            ~make_acc:(fun () -> ref [])
            ~consume:(fun r a -> r := Array.copy a :: !r)
        in
        Array.fold_left (fun acc r -> List.rev_append !r acc) [] accs
    | _ ->
        let acc = ref [] in
        run_seq m c (fun a -> acc := Array.copy a :: !acc);
        !acc
  in
  Relation.make ir.order rows

(* --- sharded driver ---

   The structure replicates the engines' sharded tier: per-shard
   machines over a Shard.view, the level-0 loop emulated over merged
   per-shard key streams (every level-0 binding has trie depth 0, since
   order.(0) holds the smallest order position), surviving candidates
   routed to shard [Shard.shard_of v] whose subtree under v is
   content-identical to the unsharded trie's.  Counter increments and
   budget ticks land at exactly the interpreted points. *)

let make_shard_machs ?pool ?budget ~metrics ir (view : Shard.view) =
  Metrics.incr metrics (trie_builds_name ir.engine);
  let k = view.Shard.k in
  let parts = view.Shard.parts in
  let natoms = Array.length parts in
  let out = Array.init natoms (fun _ -> Array.make k None) in
  let jobs = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Shard.Whole _ -> jobs := (i, -1) :: !jobs
      | Shard.Parts _ ->
          for s = k - 1 downto 0 do
            jobs := (i, s) :: !jobs
          done)
    parts;
  let jobs = Array.of_list !jobs in
  let build (i, s) =
    match parts.(i) with
    | Shard.Whole r ->
        let t = Trie.build ~order:ir.order r in
        for s = 0 to k - 1 do
          out.(i).(s) <- Some t
        done
    | Shard.Parts a -> out.(i).(s) <- Some (Trie.build ~order:ir.order a.(s))
  in
  (match pool with
  | Some p when Pool.size p > 1 && Array.length jobs > 1 ->
      Pool.run p ~chunks:(Array.length jobs) (fun j -> build jobs.(j))
  | _ -> Array.iter build jobs);
  Array.init k (fun s ->
      mach_of_tries ?budget ir
        (Array.init natoms (fun i -> Option.get out.(i).(s))))

let sharded_empty machs =
  let k = Array.length machs and n = machs.(0).natoms in
  let e = ref false in
  for i = 0 to n - 1 do
    let tot = ref 0 in
    for s = 0 to k - 1 do
      tot := !tot + Trie.row_count machs.(s).tries.(i)
    done;
    if !tot = 0 then e := true
  done;
  !e

(* Bind candidate v at level 0 of shard s's machine and emit its task,
   expanding heavy candidates one level deeper (cf. the engines'
   gen_sharded_tasks). *)
let route_candidate machs wss tasks counts c v =
  let k = Array.length machs in
  let s = Shard.shard_of ~k v in
  let m = machs.(s) in
  let ws = wss.(s) in
  ws.assignment.(0) <- v;
  let st0 = ws.stack.(0) and st1 = ws.stack.(1) in
  Array.blit st0 0 st1 0 (2 * m.natoms);
  let base = m.off.(0) in
  for j = 0 to m.off.(1) - base - 1 do
    let i = m.atom.(base + j) in
    match
      Trie.narrow m.tries.(i) ~depth:0 ~lo:st0.(2 * i) ~hi:st0.((2 * i) + 1) v
    with
    | Some (lo, hi) ->
        st1.(2 * i) <- lo;
        st1.((2 * i) + 1) <- hi
    | None -> assert false (* v present in every participant *)
  done;
  let push plen =
    counts.(s) <- counts.(s) + 1;
    tasks.(s) <-
      {
        plen;
        v0 = ws.assignment.(0);
        v1 = (if plen > 1 then ws.assignment.(1) else 0);
        st = Array.copy ws.stack.(plen);
      }
      :: tasks.(s)
  in
  if heavy_at_1 m ws then
    enum m ws c ~level:1 ~stop:2 (fun () -> push 2)
  else push 1

(* Level-0 Generic Join over the merged streams: leader by smallest
   total, one work increment and tick per enumerated leader key. *)
let gen_sharded_tasks_gj machs c =
  let k = Array.length machs in
  let m0 = machs.(0) in
  let base = m0.off.(0) in
  let np = m0.off.(1) - base in
  let streams =
    Array.init np (fun j ->
        let i = m0.atom.(base + j) in
        Shard.Stream.make
          (Array.init k (fun s -> Trie.column machs.(s).tries.(i) 0)))
  in
  let lj = ref 0 and lsize = ref max_int in
  Array.iteri
    (fun j st ->
      let s = Shard.Stream.total st in
      if s < !lsize then begin
        lsize := s;
        lj := j
      end)
    streams;
  let lj = !lj in
  let tasks = Array.make k [] in
  let counts = Array.make k 0 in
  let wss = Array.init k (fun s -> make_ws machs.(s)) in
  Array.iteri (fun s ws -> init_root machs.(s) ws) wss;
  let ls = streams.(lj) in
  let dead = ref false in
  while (not !dead) && not (Shard.Stream.exhausted ls) do
    let v = Shard.Stream.cur ls in
    c.work <- c.work + 1;
    (match m0.bud with Some b -> Budget.tick b | None -> ());
    let ok = ref true in
    let j = ref 0 in
    while !ok && !j < np do
      if !j <> lj then begin
        let st = streams.(!j) in
        Shard.Stream.seek_geq st v;
        if Shard.Stream.exhausted st then begin
          ok := false;
          dead := true
        end
        else if Shard.Stream.cur st <> v then ok := false
      end;
      incr j
    done;
    if !ok then route_candidate machs wss tasks counts c v;
    Shard.Stream.advance_gt ls v
  done;
  (Array.map (fun l -> Array.of_list (List.rev l)) tasks, counts)

(* Level-0 leapfrog over the merged streams: tick per agreed key, work
   increment and tick per lagging seek with the in-loop fin guard. *)
let gen_sharded_tasks_lf machs c =
  let k = Array.length machs in
  let m0 = machs.(0) in
  let base = m0.off.(0) in
  let np = m0.off.(1) - base in
  let streams =
    Array.init np (fun j ->
        let i = m0.atom.(base + j) in
        Shard.Stream.make
          (Array.init k (fun s -> Trie.column machs.(s).tries.(i) 0)))
  in
  let tasks = Array.make k [] in
  let counts = Array.make k 0 in
  let wss = Array.init k (fun s -> make_ws machs.(s)) in
  Array.iteri (fun s ws -> init_root machs.(s) ws) wss;
  let fin = ref false in
  Array.iter
    (fun st -> if Shard.Stream.exhausted st then fin := true)
    streams;
  while not !fin do
    let k0 = Shard.Stream.cur streams.(0) in
    let kmax = ref k0 and kmin = ref k0 in
    for j = 1 to np - 1 do
      let key = Shard.Stream.cur streams.(j) in
      if key > !kmax then kmax := key;
      if key < !kmin then kmin := key
    done;
    if !kmin = !kmax then begin
      let v = !kmin in
      (match m0.bud with Some b -> Budget.tick b | None -> ());
      route_candidate machs wss tasks counts c v;
      Array.iter
        (fun st ->
          Shard.Stream.advance_gt st v;
          if Shard.Stream.exhausted st then fin := true)
        streams
    end
    else begin
      let mx = !kmax in
      for j = 0 to np - 1 do
        if (not !fin) && Shard.Stream.cur streams.(j) < mx then begin
          c.work <- c.work + 1;
          (match m0.bud with Some b -> Budget.tick b | None -> ());
          Shard.Stream.seek_geq streams.(j) mx;
          if Shard.Stream.exhausted streams.(j) then fin := true
        end
      done
    end
  done;
  (Array.map (fun l -> Array.of_list (List.rev l)) tasks, counts)

let gen_sharded_tasks machs c =
  match machs.(0).eng with
  | Generic -> gen_sharded_tasks_gj machs c
  | Leapfrog -> gen_sharded_tasks_lf machs c

(* 2x-mean skew split into execution units, merged in (shard, offset)
   order - identical to the engines'. *)
type exec_unit = { shard : int; t0 : int; t1 : int }

let units_of counts =
  let k = Array.length counts in
  let total = Array.fold_left ( + ) 0 counts in
  let mean = max 1 ((total + k - 1) / k) in
  let cap = 2 * mean in
  let out = ref [] in
  let rec split s t0 t1 =
    if t1 - t0 > cap && t1 - t0 > 1 then begin
      let mid = (t0 + t1) / 2 in
      split s t0 mid;
      split s mid t1
    end
    else if t1 > t0 then out := { shard = s; t0; t1 } :: !out
  in
  for s = k - 1 downto 0 do
    split s 0 counts.(s)
  done;
  Array.of_list !out

let run_units machs (tasks : task array array) units pool c ~make_acc ~consume
    =
  let nu = Array.length units in
  let accs = Array.init nu (fun _ -> make_acc ()) in
  let ctrs = Array.init nu (fun _ -> fresh_counters ()) in
  let body u =
    let { shard = s; t0; t1 } = units.(u) in
    let m = machs.(s) in
    let ws = make_ws m in
    let ck = ctrs.(u) and acc = accs.(u) in
    for ti = t0 to t1 - 1 do
      run_task m ws ck tasks.(s).(ti) ~consume acc
    done
  in
  (match pool with
  | Some p when Pool.size p > 1 && nu > 1 -> Pool.run p ~chunks:nu body
  | _ ->
      for u = 0 to nu - 1 do
        body u
      done);
  Array.iter
    (fun ck ->
      c.work <- c.work + ck.work;
      c.emitted <- c.emitted + ck.emitted)
    ctrs;
  accs

let sharded_drive ?counters ?ctx ?partition ?view ~shards ir db q ~make_acc
    ~consume =
  if shards < 1 then invalid_arg "Compile.run_sharded: shards < 1";
  let ex = Exec.resolve ?ctx () in
  let c = match counters with Some c -> c | None -> fresh_counters () in
  with_metrics ir.engine ex.Exec.metrics c @@ fun () ->
  if ir.nvars = 0 then begin
    let m =
      make_mach ?budget:ex.Exec.budget ~metrics:ex.Exec.metrics ir db q
    in
    let acc = make_acc () in
    run_seq m c (fun a -> consume acc a);
    [| acc |]
  end
  else begin
    let view =
      match view with
      | Some (v : Shard.view) ->
          if v.Shard.k <> shards then
            invalid_arg "Compile.run_sharded: view shard count mismatch";
          if v.Shard.attr <> ir.order.(0) then
            invalid_arg "Compile.run_sharded: view attribute mismatch";
          v
      | None -> Shard.view ?hook:partition ~attr:ir.order.(0) ~k:shards db q
    in
    let machs =
      make_shard_machs ?pool:ex.Exec.pool ?budget:ex.Exec.budget
        ~metrics:ex.Exec.metrics ir view
    in
    if sharded_empty machs then [| make_acc () |]
    else begin
      let tasks, counts = gen_sharded_tasks machs c in
      let units = units_of counts in
      run_units machs tasks units ex.Exec.pool c ~make_acc ~consume
    end
  end

let count_sharded ?counters ?ctx ?partition ?view ~shards ir db q =
  let accs =
    sharded_drive ?counters ?ctx ?partition ?view ~shards ir db q
      ~make_acc:(fun () -> ref 0)
      ~consume:(fun r _ -> incr r)
  in
  Array.fold_left (fun acc r -> acc + !r) 0 accs

let run_sharded ?counters ?ctx ?partition ?view ~shards ir db q =
  let accs =
    sharded_drive ?counters ?ctx ?partition ?view ~shards ir db q
      ~make_acc:(fun () -> ref [])
      ~consume:(fun r a -> r := Array.copy a :: !r)
  in
  Relation.make ir.order
    (Array.fold_left (fun acc r -> List.rev_append !r acc) [] accs)
