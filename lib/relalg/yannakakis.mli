(** Yannakakis' algorithm for alpha-acyclic join queries (the tractable
    class of Section 4): a full reducer (semijoin passes along a join
    tree) followed by bottom-up joins, with no intermediate ever
    exceeding the output. *)

type stats = { max_intermediate : int; semijoins : int }

exception Cyclic

(** Semijoin-reduce all relations along a join tree.  Returns (reduced
    relations, parent array, post-order, semijoin count).  Raises
    {!Cyclic} on cyclic queries.  The budget, if any, is ticked once per
    semijoin. *)
val full_reducer :
  ?budget:Lb_util.Budget.t ->
  Database.t ->
  Query.t ->
  Relation.t array * int array * int list * int

(** Full answer plus execution stats.  Raises {!Cyclic}.  The [ctx]
    budget is ticked once per semijoin and per tree join (raising
    {!Lb_util.Budget.Budget_exhausted} when spent); the [ctx] metrics
    sink receives [yannakakis.semijoins] and
    [yannakakis.max_intermediate]. *)
val answer : ?ctx:Lb_util.Exec.t -> Database.t -> Query.t -> Relation.t * stats

(** Nonempty-answer decision without materializing anything beyond the
    reducer.  Honors [ctx] like {!answer}. *)
val boolean_answer : ?ctx:Lb_util.Exec.t -> Database.t -> Query.t -> bool

val is_acyclic : Query.t -> bool

(** Enumeration with linear preprocessing and per-answer delay bounded
    by the query size (the constant-delay regime the paper cites for
    acyclic queries).  [f] receives each answer parallel to
    [Query.attributes q]; the array is reused.  The [ctx] budget governs
    the reducer phase. *)
val iter_answers :
  ?ctx:Lb_util.Exec.t -> Database.t -> Query.t -> (int array -> unit) -> unit
