(* Sorted columnar tries over a global attribute order.

   Both worst-case-optimal join implementations (Generic Join and
   Leapfrog Triejoin) view each relation as a trie whose levels follow
   the global variable order restricted to the relation's attributes.  We
   materialize the trie implicitly: tuples are permuted into that order
   and sorted lexicographically; a trie node is a row range [lo, hi) at a
   depth, and children are the maximal equal-key subranges at that depth.

   Layout is struct-of-arrays: one flat off-heap {!Lb_util.Column} per
   trie level, so a seek at depth d scans a single contiguous unboxed
   buffer instead of hopping through row pointers - and the GC never
   walks the data, only each column's constant-size header.  The
   lexicographic sort is a monomorphic three-way quicksort on (key,
   permutation) pairs, recursing per equal run into the next column - no
   polymorphic comparison is involved anywhere in the build.

   Navigation is galloping (exponential) search seeded at the low end of
   the query range: seeks that advance a cursor by k positions cost
   O(log k), which is what makes LFTJ's amortized seek bound real. *)

module Column = Lb_util.Column
module Arena = Lb_util.Arena

type t = {
  attrs : string array; (* relation attrs permuted into global order *)
  nrows : int;
  cols : Column.t array; (* cols.(depth).(row); columnar, sorted lexicographically *)
}

let attrs t = t.attrs

let depth_count t = Array.length t.attrs

let row_count t = t.nrows

let column t depth = t.cols.(depth)

(* --- galloping search primitives on a raw column ---

   Accesses are unchecked: every probe index lies in [lo, hi), which the
   callers (trie navigation, the engines' level loops) keep inside the
   column by construction. *)

(* First index in [lo, hi) with col.(i) >= v, galloping from [lo]; [hi]
   if none.  Cost O(log (result - lo)). *)
let gallop_geq (col : Column.t) lo hi v =
  if lo >= hi then hi
  else if Column.unsafe_get col lo >= v then lo
  else begin
    (* invariant: col.(base) < v *)
    let base = ref lo and step = ref 1 in
    while !base + !step < hi && Column.unsafe_get col (!base + !step) < v do
      base := !base + !step;
      step := !step * 2
    done;
    let l = ref (!base + 1) and h = ref (min (!base + !step) hi) in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      if Column.unsafe_get col mid < v then l := mid + 1 else h := mid
    done;
    !l
  end

(* First index in [lo, hi) with col.(i) > v, galloping from [lo]. *)
let gallop_gt (col : Column.t) lo hi v =
  if lo >= hi then hi
  else if Column.unsafe_get col lo > v then lo
  else begin
    let base = ref lo and step = ref 1 in
    while !base + !step < hi && Column.unsafe_get col (!base + !step) <= v do
      base := !base + !step;
      step := !step * 2
    done;
    let l = ref (!base + 1) and h = ref (min (!base + !step) hi) in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      if Column.unsafe_get col mid <= v then l := mid + 1 else h := mid
    done;
    !l
  end

(* --- monomorphic lexicographic sort ---

   Sorts a row permutation so that rows read through it are in
   lexicographic column order.  Per column: pull the range's keys into a
   scratch column (one cache-friendly contiguous pass), three-way
   quicksort (key, perm) together with plain int comparisons, then
   recurse into each equal-key run on the next column. *)

let swap2 (key : Column.t) (perm : Column.t) i j =
  let k = Column.unsafe_get key i in
  Column.unsafe_set key i (Column.unsafe_get key j);
  Column.unsafe_set key j k;
  let p = Column.unsafe_get perm i in
  Column.unsafe_set perm i (Column.unsafe_get perm j);
  Column.unsafe_set perm j p

(* Insertion sort of (key, perm) on [lo, hi). *)
let insertion_sort (key : Column.t) (perm : Column.t) lo hi =
  for i = lo + 1 to hi - 1 do
    let k = Column.unsafe_get key i and p = Column.unsafe_get perm i in
    let j = ref i in
    while !j > lo && Column.unsafe_get key (!j - 1) > k do
      Column.unsafe_set key !j (Column.unsafe_get key (!j - 1));
      Column.unsafe_set perm !j (Column.unsafe_get perm (!j - 1));
      decr j
    done;
    Column.unsafe_set key !j k;
    Column.unsafe_set perm !j p
  done

(* Three-way (Dutch-flag) quicksort of (key, perm) on [lo, hi). *)
let rec sort_pairs (key : Column.t) (perm : Column.t) lo hi =
  if hi - lo <= 16 then insertion_sort key perm lo hi
  else begin
    (* median-of-three pivot *)
    let mid = lo + ((hi - lo) / 2) in
    let a = Column.unsafe_get key lo
    and b = Column.unsafe_get key mid
    and c = Column.unsafe_get key (hi - 1) in
    let pivot =
      if a < b then if b < c then b else if a < c then c else a
      else if a < c then a
      else if b < c then c
      else b
    in
    (* partition into < pivot | = pivot | > pivot *)
    let lt = ref lo and i = ref lo and gt = ref hi in
    while !i < !gt do
      let k = Column.unsafe_get key !i in
      if k < pivot then begin
        swap2 key perm !lt !i;
        incr lt;
        incr i
      end
      else if k > pivot then begin
        decr gt;
        swap2 key perm !i !gt
      end
      else incr i
    done;
    sort_pairs key perm lo !lt;
    sort_pairs key perm !gt hi
  end

(* Sort perm.[lo, hi) lexicographically on cols starting at [depth],
   using [key] as scratch. *)
let rec sort_lex (cols : Column.t array) (key : Column.t) (perm : Column.t)
    depth lo hi =
  if hi - lo > 1 && depth < Array.length cols then begin
    let col = cols.(depth) in
    for i = lo to hi - 1 do
      Column.unsafe_set key i (Column.unsafe_get col (Column.unsafe_get perm i))
    done;
    sort_pairs key perm lo hi;
    (* recurse into equal-key runs on the next column *)
    let i = ref lo in
    while !i < hi do
      let v = Column.unsafe_get key !i in
      let j = ref (!i + 1) in
      while !j < hi && Column.unsafe_get key !j = v do
        incr j
      done;
      if !j - !i > 1 then sort_lex cols key perm (depth + 1) !i !j;
      i := !j
    done
  end

(* Build from a relation: permute columns so attributes appear in the
   order induced by [order] (a global variable order containing all of
   the relation's attributes).  The sort scratch (unsorted columns, key,
   permutation) comes from [scratch] when given and is released before
   returning; only the final sorted columns are fresh allocations. *)
let build ?scratch ~order rel =
  let position = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace position x i) order;
  let cols_spec =
    Array.to_list (Relation.attrs rel)
    |> List.mapi (fun i x ->
           match Hashtbl.find_opt position x with
           | Some p -> (p, i, x)
           | None -> invalid_arg ("Trie.build: attribute not in order: " ^ x))
    |> List.sort (fun (p, _, _) (q, _, _) ->
           if (p : int) < q then -1 else if p > q then 1 else 0)
  in
  let src = Array.of_list (List.map (fun (_, i, _) -> i) cols_spec) in
  let attrs = Array.of_list (List.map (fun (_, _, x) -> x) cols_spec) in
  let width = Array.length attrs in
  let tuples = Relation.tuples rel in
  let n = Array.length tuples in
  let amark = Option.map (fun a -> (a, Arena.mark a)) scratch in
  let salloc len =
    match scratch with Some a -> Arena.alloc a len | None -> Column.create len
  in
  (* columnar copy in source row order *)
  let unsorted =
    Array.init width (fun d ->
        let s = src.(d) in
        let c = salloc n in
        for i = 0 to n - 1 do
          Column.unsafe_set c i tuples.(i).(s)
        done;
        c)
  in
  let perm = salloc n in
  for i = 0 to n - 1 do
    Column.unsafe_set perm i i
  done;
  let key = salloc (max n 1) in
  sort_lex unsorted key perm 0 0 n;
  let cols =
    Array.init width (fun d ->
        let u = unsorted.(d) in
        Column.init n (fun i -> Column.unsafe_get u (Column.unsafe_get perm i)))
  in
  (match amark with Some (a, m) -> Arena.release a m | None -> ());
  { attrs; nrows = n; cols }

(* Trusted constructor from pre-sorted distinct rows: columnarize, no
   sort, no dedup.  The write path's delta merges produce exactly this
   shape, so rebuilding a trie after a small write is O(n * width)
   instead of a fresh O(n log n) lexicographic sort. *)
let of_sorted_rows attrs rows =
  let width = Array.length attrs in
  let n = Array.length rows in
  let cols =
    Array.init width (fun d -> Column.init n (fun i -> rows.(i).(d)))
  in
  { attrs = Array.copy attrs; nrows = n; cols }

(* Trusted zero-copy constructor: adopt already-sorted columns (e.g.
   views into an mmap'd snapshot image) as trie levels.  Each column
   must hold [nrows] keys and the implied rows must be lexicographically
   sorted and distinct - nothing is checked or copied. *)
let of_columns attrs ~nrows cols =
  if Array.length cols <> Array.length attrs then
    invalid_arg "Trie.of_columns: width";
  Array.iter
    (fun c ->
      if Column.length c <> nrows then invalid_arg "Trie.of_columns: length")
    cols;
  { attrs = Array.copy attrs; nrows; cols = Array.copy cols }

(* First index in [lo, hi) whose key at [depth] is >= v. *)
let lower_bound t ~depth ~lo ~hi v = gallop_geq t.cols.(depth) lo hi v

(* First index in [lo, hi) whose key at [depth] is > v. *)
let upper_bound t ~depth ~lo ~hi v = gallop_gt t.cols.(depth) lo hi v

(* Child range for value v at [depth] within [lo, hi), if nonempty. *)
let narrow t ~depth ~lo ~hi v =
  let col = t.cols.(depth) in
  let l = gallop_geq col lo hi v in
  if l >= hi || Column.unsafe_get col l <> v then None
  else Some (l, gallop_gt col l hi v)

(* Iterate the distinct keys at [depth] within [lo, hi); [f v sublo
   subhi] gets each key's child range. *)
let iter_keys t ~depth ~lo ~hi f =
  let col = t.cols.(depth) in
  let pos = ref lo in
  while !pos < hi do
    let v = Column.unsafe_get col !pos in
    let e = gallop_gt col !pos hi v in
    f v !pos e;
    pos := e
  done

let key_at t ~depth pos = Column.get t.cols.(depth) pos

let distinct_key_count t ~depth ~lo ~hi =
  let c = ref 0 in
  iter_keys t ~depth ~lo ~hi (fun _ _ _ -> incr c);
  !c
