(* Named relations: a schema of attribute names and a set of int tuples.

   This is the "table" of Section 2.1.  Values are plain ints (a database
   with any other value type can be dictionary-encoded into this form
   without changing any of the complexity behaviour the library
   studies). *)

type t = {
  attrs : string array; (* column names; distinct *)
  tuples : int array array; (* rows; width = |attrs|; duplicate-free *)
}

let check_attrs attrs =
  let l = Array.to_list attrs in
  if List.length (List.sort_uniq String.compare l) <> List.length l then
    invalid_arg "Relation: duplicate attribute names"

(* Monomorphic lexicographic comparison of int tuples: the dedup paths
   ([make], [project], [equal]) are warm enough that polymorphic
   [compare] shows up in profiles. *)
let compare_tuples (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then if la < lb then -1 else 1
  else begin
    let i = ref 0 and r = ref 0 in
    while !r = 0 && !i < la do
      let x = a.(!i) and y = b.(!i) in
      if x < y then r := -1 else if x > y then r := 1;
      incr i
    done;
    !r
  end

let equal_tuples (a : int array) (b : int array) = compare_tuples a b = 0

module Tuple_set = Set.Make (struct
  type t = int array

  let compare = compare_tuples
end)

(* Trusted constructor from known-duplicate-free rows (kept in the
   order given - the write path hands them lexicographically sorted so
   downstream trie builds can skip the sort).  Ownership of [rows]
   transfers to the relation. *)
let of_sorted_distinct attrs rows =
  check_attrs attrs;
  let width = Array.length attrs in
  Array.iter
    (fun t ->
      if Array.length t <> width then
        invalid_arg "Relation.of_sorted_distinct: tuple width")
    rows;
  { attrs = Array.copy attrs; tuples = rows }

let make attrs tuple_list =
  check_attrs attrs;
  let width = Array.length attrs in
  List.iter
    (fun t ->
      if Array.length t <> width then invalid_arg "Relation.make: tuple width")
    tuple_list;
  let set = Tuple_set.of_list (List.map Array.copy tuple_list) in
  { attrs = Array.copy attrs; tuples = Array.of_list (Tuple_set.elements set) }

let attrs t = t.attrs

let tuples t = t.tuples

let cardinality t = Array.length t.tuples

let width t = Array.length t.attrs

let mem t tuple = Array.exists (fun u -> equal_tuples u tuple) t.tuples

let attr_index t name =
  let rec go i =
    if i >= Array.length t.attrs then None
    else if t.attrs.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let has_attr t name = attr_index t name <> None

(* Active domain: all values appearing anywhere. *)
let active_domain t =
  let s = Hashtbl.create 64 in
  Array.iter (Array.iter (fun v -> Hashtbl.replace s v ())) t.tuples;
  Hashtbl.fold (fun v () acc -> v :: acc) s []
  |> List.sort (fun (a : int) b -> if a < b then -1 else if a > b then 1 else 0)

let rename t mapping =
  let attrs' =
    Array.map
      (fun a -> match List.assoc_opt a mapping with Some b -> b | None -> a)
      t.attrs
  in
  check_attrs attrs';
  { t with attrs = attrs' }

let project t names =
  let idx =
    Array.map
      (fun name ->
        match attr_index t name with
        | Some i -> i
        | None -> invalid_arg ("Relation.project: no attribute " ^ name))
      names
  in
  let set =
    Array.fold_left
      (fun acc tup -> Tuple_set.add (Array.map (fun i -> tup.(i)) idx) acc)
      Tuple_set.empty t.tuples
  in
  { attrs = Array.copy names; tuples = Array.of_list (Tuple_set.elements set) }

let select_eq t name value =
  match attr_index t name with
  | None -> invalid_arg ("Relation.select_eq: no attribute " ^ name)
  | Some i ->
      { t with tuples = Array.of_list (List.filter (fun tup -> tup.(i) = value) (Array.to_list t.tuples)) }

(* Key of a tuple on given column indices, for hashing. *)
let key_of idx tup = Array.map (fun i -> tup.(i)) idx

let common_attrs a b =
  Array.to_list a.attrs |> List.filter (fun n -> has_attr b n)

(* Hash-based natural join. *)
let natural_join a b =
  let common = common_attrs a b in
  let aidx = Array.of_list (List.map (fun n -> Option.get (attr_index a n)) common) in
  let bidx = Array.of_list (List.map (fun n -> Option.get (attr_index b n)) common) in
  (* output schema: a's attrs then b's non-common attrs *)
  let b_extra =
    Array.to_list b.attrs
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> not (has_attr a n))
  in
  let out_attrs =
    Array.append a.attrs (Array.of_list (List.map snd b_extra))
  in
  let b_extra_idx = Array.of_list (List.map fst b_extra) in
  (* hash the smaller side on common attrs *)
  let build, probe, build_idx, probe_idx, build_is_a =
    if cardinality a <= cardinality b then (a, b, aidx, bidx, true)
    else (b, a, bidx, aidx, false)
  in
  let table = Hashtbl.create (2 * cardinality build) in
  Array.iter
    (fun tup ->
      let k = key_of build_idx tup in
      Hashtbl.add table k tup)
    build.tuples;
  (* No dedup needed: both inputs are duplicate-free and an output row
     determines its pair of input rows (the b-side row is its key plus
     its extra columns). *)
  let out = ref [] in
  Array.iter
    (fun ptup ->
      let k = key_of probe_idx ptup in
      List.iter
        (fun btup ->
          let atup, btup' = if build_is_a then (btup, ptup) else (ptup, btup) in
          let row =
            Array.append atup (Array.map (fun i -> btup'.(i)) b_extra_idx)
          in
          out := row :: !out)
        (Hashtbl.find_all table k))
    probe.tuples;
  { attrs = out_attrs; tuples = Array.of_list !out }

(* Semijoin: tuples of [a] that join with some tuple of [b]. *)
let semijoin a b =
  let common = common_attrs a b in
  if common = [] then if cardinality b = 0 then { a with tuples = [||] } else a
  else begin
    let aidx = Array.of_list (List.map (fun n -> Option.get (attr_index a n)) common) in
    let bidx = Array.of_list (List.map (fun n -> Option.get (attr_index b n)) common) in
    let keys = Hashtbl.create (2 * cardinality b) in
    Array.iter (fun tup -> Hashtbl.replace keys (key_of bidx tup) ()) b.tuples;
    {
      a with
      tuples =
        Array.of_list
          (List.filter
             (fun tup -> Hashtbl.mem keys (key_of aidx tup))
             (Array.to_list a.tuples));
    }
  end

let equal_attrs a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i x -> if not (String.equal x b.(i)) then ok := false) a;
       !ok
     end

let equal a b =
  equal_attrs a.attrs b.attrs
  && cardinality a = cardinality b
  && Tuple_set.equal
       (Tuple_set.of_list (Array.to_list a.tuples))
       (Tuple_set.of_list (Array.to_list b.tuples))

(* Same content modulo column order. *)
let equal_modulo_order a b =
  let sorted r = List.sort String.compare (Array.to_list r.attrs) in
  Array.length a.attrs = Array.length b.attrs
  && List.equal String.equal (sorted a) (sorted b)
  && equal
       (project a (Array.of_list (sorted a)))
       (project b (Array.of_list (sorted b)))

let cross_product a b =
  Array.iter
    (fun n -> if has_attr b n then invalid_arg "Relation.cross_product: shared attribute")
    a.attrs;
  natural_join a b

let pp fmt t =
  Format.fprintf fmt "%s(%d tuples)"
    (String.concat "," (Array.to_list t.attrs))
    (cardinality t)
