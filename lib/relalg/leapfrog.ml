(* Leapfrog Triejoin (Veldhuizen 2014), the second worst-case-optimal
   join of Theorem 3.3.

   Same columnar trie view as Generic Join, but the per-variable
   intersection is the leapfrog: iterators over the participants' sorted
   key streams repeatedly seek to the current maximum key until all
   agree, emitting each agreed key.  Seeks are galloping searches seeded
   at the iterator's current position, which is what makes the amortized
   seek cost of LFTJ real.

   The engine shares the design of [Generic_join]: participants and
   their trie columns per level are precomputed from the schema, the
   per-atom row ranges live in a preallocated stack of flat int arrays,
   and nothing allocates on the hot path.  [count]/[answer] accept a
   [?pool] to run the first variable's candidates Domain-parallel with
   per-chunk counters merged at the end. *)

module Pool = Lb_util.Pool
module Budget = Lb_util.Budget
module Metrics = Lb_util.Metrics
module Exec = Lb_util.Exec
module Column = Lb_util.Column

type counters = { mutable seeks : int; mutable emitted : int }

let fresh_counters () = { seeks = 0; emitted = 0 }

type ctx = {
  tries : Trie.t array;
  nvars : int;
  natoms : int;
  participants : int array array;
  pcols : Column.t array array;
  bud : Budget.t option;
      (* ticked once per agreed key and per seek; shared across domains
         in parallel runs (cooperative - see Generic_join) *)
}

(* Schema-driven part of the context; shared with the per-shard
   builders (see Generic_join). *)
let ctx_of_tries ?budget ~order tries =
  let natoms = Array.length tries in
  let nvars = Array.length order in
  let participants = Array.make nvars [||] in
  let pcols = Array.make nvars [||] in
  for l = 0 to nvars - 1 do
    let var = order.(l) in
    let ids = ref [] in
    for i = natoms - 1 downto 0 do
      let ats = Trie.attrs tries.(i) in
      for d = 0 to Array.length ats - 1 do
        if ats.(d) = var then ids := (i, d) :: !ids
      done
    done;
    participants.(l) <- Array.of_list (List.map fst !ids);
    pcols.(l) <-
      Array.of_list (List.map (fun (i, d) -> Trie.column tries.(i) d) !ids)
  done;
  { tries; nvars; natoms; participants; pcols; bud = budget }

let make_ctx ?pool ?budget ?(metrics = Metrics.disabled) ~order db
    (q : Query.t) =
  Metrics.incr metrics "leapfrog.trie_builds";
  let atoms = Array.of_list q in
  let natoms = Array.length atoms in
  let build i = Trie.build ~order (Query.bind_atom db atoms.(i)) in
  let tries =
    match pool with
    | Some p when Pool.size p > 1 && natoms > 1 ->
        let out = Array.make natoms None in
        Pool.run p ~chunks:natoms (fun i -> out.(i) <- Some (build i));
        Array.map Option.get out
    | _ -> Array.init natoms build
  in
  ctx_of_tries ?budget ~order tries

let has_empty_atom ctx =
  let e = ref false in
  Array.iter (fun t -> if Trie.row_count t = 0 then e := true) ctx.tries;
  !e

type ws = {
  stack : int array array;
  cursors : int array array; (* iterator positions per participant *)
  assignment : int array;
}

let make_ws ctx =
  {
    stack =
      Array.init (ctx.nvars + 1) (fun _ -> Array.make (max 1 (2 * ctx.natoms)) 0);
    cursors = Array.init (max 1 ctx.nvars) (fun _ -> Array.make (max 1 ctx.natoms) 0);
    assignment = Array.make (max 1 ctx.nvars) 0;
  }

let init_root ctx ws =
  let st = ws.stack.(0) in
  for i = 0 to ctx.natoms - 1 do
    st.(2 * i) <- 0;
    st.(2 * i + 1) <- Trie.row_count ctx.tries.(i)
  done

(* Leapfrog the participants' key streams at [level], recursing to
   [stop]; [c.seeks] counts actual seek operations. *)
let rec enumerate ctx ws c ~level ~stop on_leaf =
  if level >= stop then on_leaf ()
  else begin
    let ps = ctx.participants.(level) in
    let np = Array.length ps in
    if np = 0 then invalid_arg "Leapfrog: variable missing from all atoms";
    let cols = ctx.pcols.(level) in
    let st = ws.stack.(level) and st' = ws.stack.(level + 1) in
    Array.blit st 0 st' 0 (2 * ctx.natoms);
    let pos = ws.cursors.(level) in
    let fin = ref false in
    for j = 0 to np - 1 do
      let i = ps.(j) in
      pos.(j) <- st.(2 * i);
      if st.(2 * i) >= st.(2 * i + 1) then fin := true
    done;
    while not !fin do
      (* current extremes of the key streams *)
      let k0 = Column.unsafe_get cols.(0) pos.(0) in
      let kmax = ref k0 and kmin = ref k0 in
      for j = 1 to np - 1 do
        let k = Column.unsafe_get cols.(j) pos.(j) in
        if k > !kmax then kmax := k;
        if k < !kmin then kmin := k
      done;
      if !kmin = !kmax then begin
        let v = !kmin in
        (match ctx.bud with Some b -> Budget.tick b | None -> ());
        (* all agree: bind v, recurse into the equal-key subranges *)
        for j = 0 to np - 1 do
          let i = ps.(j) in
          let e = Trie.gallop_gt cols.(j) pos.(j) st.(2 * i + 1) v in
          st'.(2 * i) <- pos.(j);
          st'.(2 * i + 1) <- e
        done;
        ws.assignment.(level) <- v;
        enumerate ctx ws c ~level:(level + 1) ~stop on_leaf;
        (* advance every iterator past v *)
        for j = 0 to np - 1 do
          let i = ps.(j) in
          pos.(j) <- st'.(2 * i + 1);
          if pos.(j) >= st.(2 * i + 1) then fin := true
        done
      end
      else begin
        (* seek every lagging iterator up to the maximum *)
        let m = !kmax in
        for j = 0 to np - 1 do
          if (not !fin) && Column.unsafe_get cols.(j) pos.(j) < m then begin
            c.seeks <- c.seeks + 1;
            (match ctx.bud with Some b -> Budget.tick b | None -> ());
            let i = ps.(j) in
            pos.(j) <- Trie.gallop_geq cols.(j) pos.(j) st.(2 * i + 1) m;
            if pos.(j) >= st.(2 * i + 1) then fin := true
          end
        done
      end
    done
  end

let run_seq ctx c f =
  if not (has_empty_atom ctx) then begin
    let ws = make_ws ctx in
    init_root ctx ws;
    enumerate ctx ws c ~level:0 ~stop:ctx.nvars (fun () ->
        c.emitted <- c.emitted + 1;
        f ws.assignment)
  end

(* Record per-call counter deltas into a metrics sink - also when a
   budget cuts the run short. *)
let with_metrics metrics c f =
  let s0 = c.seeks and e0 = c.emitted in
  Fun.protect
    ~finally:(fun () ->
      Metrics.add metrics "leapfrog.seeks" (c.seeks - s0);
      Metrics.add metrics "leapfrog.emitted" (c.emitted - e0))
    f

let iter ?order ?counters ?ctx db (q : Query.t) f =
  let ex = Exec.resolve ?ctx () in
  let order = match order with Some o -> o | None -> Query.attributes q in
  let c = match counters with Some c -> c | None -> fresh_counters () in
  with_metrics ex.Exec.metrics c (fun () ->
      run_seq
        (make_ctx ?budget:ex.Exec.budget ~metrics:ex.Exec.metrics ~order db q)
        c f)

(* --- parallel driver (same task scheme as Generic_join) --- *)

type task = { plen : int; v0 : int; v1 : int; st : int array }

let split_threshold = 64

let gen_tasks ctx ws c =
  let tasks = ref [] and n = ref 0 in
  let push plen =
    incr n;
    tasks :=
      {
        plen;
        v0 = ws.assignment.(0);
        v1 = (if plen > 1 then ws.assignment.(1) else 0);
        st = Array.copy ws.stack.(plen);
      }
      :: !tasks
  in
  enumerate ctx ws c ~level:0 ~stop:1 (fun () ->
      let heavy =
        ctx.nvars >= 2
        &&
        let ps = ctx.participants.(1) in
        let st = ws.stack.(1) in
        let w = ref max_int in
        Array.iter
          (fun i ->
            let s = st.((2 * i) + 1) - st.(2 * i) in
            if s < !w then w := s)
          ps;
        !w > split_threshold
      in
      if heavy then enumerate ctx ws c ~level:1 ~stop:2 (fun () -> push 2)
      else push 1);
  (!n, Array.of_list (List.rev !tasks))

let run_par ctx pool c ~make_acc ~consume =
  let gws = make_ws ctx in
  init_root ctx gws;
  let ntasks, tasks = gen_tasks ctx gws c in
  let per_chunk = max 1 (ntasks / (Pool.size pool * 8)) in
  let nchunks = (ntasks + per_chunk - 1) / per_chunk in
  let accs = Array.init nchunks (fun _ -> make_acc ()) in
  let ctrs = Array.init nchunks (fun _ -> fresh_counters ()) in
  Pool.run pool ~chunks:nchunks (fun k ->
      let ws = make_ws ctx in
      let ck = ctrs.(k) and acc = accs.(k) in
      let t1 = min ntasks ((k + 1) * per_chunk) in
      for ti = k * per_chunk to t1 - 1 do
        let t = tasks.(ti) in
        ws.assignment.(0) <- t.v0;
        if t.plen > 1 then ws.assignment.(1) <- t.v1;
        Array.blit t.st 0 ws.stack.(t.plen) 0 (2 * ctx.natoms);
        enumerate ctx ws ck ~level:t.plen ~stop:ctx.nvars (fun () ->
            ck.emitted <- ck.emitted + 1;
            consume acc ws.assignment)
      done);
  Array.iter
    (fun ck ->
      c.seeks <- c.seeks + ck.seeks;
      c.emitted <- c.emitted + ck.emitted)
    ctrs;
  accs

let pool_applies ctx = function
  | Some p when Pool.size p > 1 && ctx.nvars >= 2 -> Some p
  | _ -> None

let count ?order ?counters ?ctx db q =
  let ex = Exec.resolve ?ctx () in
  let order = match order with Some o -> o | None -> Query.attributes q in
  let c = match counters with Some c -> c | None -> fresh_counters () in
  let ctx =
    make_ctx ?pool:ex.Exec.pool ?budget:ex.Exec.budget ~metrics:ex.Exec.metrics
      ~order db q
  in
  with_metrics ex.Exec.metrics c @@ fun () ->
  match pool_applies ctx ex.Exec.pool with
  | Some p when not (has_empty_atom ctx) ->
      let accs =
        run_par ctx p c ~make_acc:(fun () -> ref 0) ~consume:(fun r _ -> incr r)
      in
      Array.fold_left (fun acc r -> acc + !r) 0 accs
  | _ ->
      let n = ref 0 in
      run_seq ctx c (fun _ -> incr n);
      !n

let count_bounded ?order ?counters ?ctx db q =
  Budget.protect (fun () -> count ?order ?counters ?ctx db q)

let answer ?order ?ctx db q =
  let ex = Exec.resolve ?ctx () in
  let order = match order with Some o -> o | None -> Query.attributes q in
  let c = fresh_counters () in
  let ctx =
    make_ctx ?pool:ex.Exec.pool ?budget:ex.Exec.budget ~metrics:ex.Exec.metrics
      ~order db q
  in
  let rows =
    with_metrics ex.Exec.metrics c @@ fun () ->
    match pool_applies ctx ex.Exec.pool with
    | Some p when not (has_empty_atom ctx) ->
        let accs =
          run_par ctx p c
            ~make_acc:(fun () -> ref [])
            ~consume:(fun r a -> r := Array.copy a :: !r)
        in
        Array.fold_left (fun acc r -> List.rev_append !r acc) [] accs
    | _ ->
        let acc = ref [] in
        run_seq ctx c (fun a -> acc := Array.copy a :: !acc);
        !acc
  in
  Relation.make order rows

exception Found

let exists ?order ?ctx db q =
  let ex = Exec.resolve ?ctx () in
  let order = match order with Some o -> o | None -> Query.attributes q in
  let c = fresh_counters () in
  let ctx = make_ctx ?budget:ex.Exec.budget ~order db q in
  try
    run_seq ctx c (fun _ -> raise Found);
    false
  with Found -> true

(* --- sharded driver --- *)

(* Same scheme as Generic_join's: per-shard contexts over a Shard.view,
   with the level-0 leapfrog emulated over merged per-shard key streams
   so that seeks, agreed keys and budget ticks replicate the unsharded
   loop exactly; each agreed key x=v becomes a task routed to shard
   [shard_of v], whose subtree under v is content-identical to the
   unsharded trie's. *)

(* Distributed-participant slice: see Generic_join.subset.  [owned s]
   selects the shards whose deep-level work this process performs;
   the single [lead] accounts the level-0 emulation and the logical
   trie build, so counters summed over a cover of participants equal
   the single-process sharded totals. *)
type subset = { owned : int -> bool; lead : bool }

let all_shards = { owned = (fun _ -> true); lead = true }

let make_shard_ctxs ?pool ?budget ?(lead = true) ~metrics ~order
    (view : Shard.view) =
  if lead then Metrics.incr metrics "leapfrog.trie_builds";
  let k = view.Shard.k in
  let parts = view.Shard.parts in
  let natoms = Array.length parts in
  let out = Array.init natoms (fun _ -> Array.make k None) in
  let jobs = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Shard.Whole _ -> jobs := (i, -1) :: !jobs
      | Shard.Parts _ ->
          for s = k - 1 downto 0 do
            jobs := (i, s) :: !jobs
          done)
    parts;
  let jobs = Array.of_list !jobs in
  let build (i, s) =
    match parts.(i) with
    | Shard.Whole r ->
        let t = Trie.build ~order r in
        for s = 0 to k - 1 do
          out.(i).(s) <- Some t
        done
    | Shard.Parts a -> out.(i).(s) <- Some (Trie.build ~order a.(s))
  in
  (match pool with
  | Some p when Pool.size p > 1 && Array.length jobs > 1 ->
      Pool.run p ~chunks:(Array.length jobs) (fun j -> build jobs.(j))
  | _ -> Array.iter build jobs);
  Array.init k (fun s ->
      ctx_of_tries ?budget ~order
        (Array.init natoms (fun i -> Option.get out.(i).(s))))

let sharded_empty ctxs =
  let k = Array.length ctxs and n = ctxs.(0).natoms in
  let e = ref false in
  for i = 0 to n - 1 do
    let tot = ref 0 in
    for s = 0 to k - 1 do
      tot := !tot + Trie.row_count ctxs.(s).tries.(i)
    done;
    if !tot = 0 then e := true
  done;
  !e

(* Level-0 leapfrog emulation: [c.seeks] and the budget are charged at
   exactly the points the unsharded loop charges them, including the
   in-loop [fin] guard that stops seeking the remaining laggards once
   one stream exhausts. *)
let gen_sharded_tasks ctxs c ~sub =
  (* level-0 seek/tick accounting belongs to the lead participant; the
     others replay the identical stream walk against a scratch counter *)
  let c0 = if sub.lead then c else fresh_counters () in
  let k = Array.length ctxs in
  let ctx0 = ctxs.(0) in
  let ps = ctx0.participants.(0) in
  let np = Array.length ps in
  if np = 0 then invalid_arg "Leapfrog: variable missing from all atoms";
  let streams =
    Array.map
      (fun i ->
        Shard.Stream.make
          (Array.init k (fun s -> Trie.column ctxs.(s).tries.(i) 0)))
      ps
  in
  let tasks = Array.make k [] in
  let counts = Array.make k 0 in
  let wss = Array.init k (fun s -> make_ws ctxs.(s)) in
  Array.iteri (fun s ws -> init_root ctxs.(s) ws) wss;
  let fin = ref false in
  Array.iter
    (fun st -> if Shard.Stream.exhausted st then fin := true)
    streams;
  while not !fin do
    let k0 = Shard.Stream.cur streams.(0) in
    let kmax = ref k0 and kmin = ref k0 in
    for j = 1 to np - 1 do
      let key = Shard.Stream.cur streams.(j) in
      if key > !kmax then kmax := key;
      if key < !kmin then kmin := key
    done;
    if !kmin = !kmax then begin
      let v = !kmin in
      (match ctx0.bud with Some b when sub.lead -> Budget.tick b | _ -> ());
      let s = Shard.shard_of ~k v in
      if sub.owned s then begin
      let cx = ctxs.(s) in
      let ws = wss.(s) in
      ws.assignment.(0) <- v;
      let st0 = ws.stack.(0) and st1 = ws.stack.(1) in
      Array.blit st0 0 st1 0 (2 * cx.natoms);
      Array.iter
        (fun i ->
          match
            Trie.narrow cx.tries.(i) ~depth:0 ~lo:st0.(2 * i)
              ~hi:st0.((2 * i) + 1) v
          with
          | Some (lo, hi) ->
              st1.(2 * i) <- lo;
              st1.((2 * i) + 1) <- hi
          | None -> assert false (* all streams agreed on v *))
        ps;
      let push plen =
        counts.(s) <- counts.(s) + 1;
        tasks.(s) <-
          {
            plen;
            v0 = ws.assignment.(0);
            v1 = (if plen > 1 then ws.assignment.(1) else 0);
            st = Array.copy ws.stack.(plen);
          }
          :: tasks.(s)
      in
      let heavy =
        cx.nvars >= 2
        &&
        let ps1 = cx.participants.(1) in
        let st = ws.stack.(1) in
        let w = ref max_int in
        Array.iter
          (fun i ->
            let sz = st.((2 * i) + 1) - st.(2 * i) in
            if sz < !w then w := sz)
          ps1;
        !w > split_threshold
      in
      if heavy then enumerate cx ws c ~level:1 ~stop:2 (fun () -> push 2)
      else push 1
      end;
      Array.iter
        (fun st ->
          Shard.Stream.advance_gt st v;
          if Shard.Stream.exhausted st then fin := true)
        streams
    end
    else begin
      let m = !kmax in
      for j = 0 to np - 1 do
        if (not !fin) && Shard.Stream.cur streams.(j) < m then begin
          c0.seeks <- c0.seeks + 1;
          (match ctx0.bud with Some b when sub.lead -> Budget.tick b | _ -> ());
          Shard.Stream.seek_geq streams.(j) m;
          if Shard.Stream.exhausted streams.(j) then fin := true
        end
      done
    end
  done;
  (Array.map (fun l -> Array.of_list (List.rev l)) tasks, counts)

type exec_unit = { shard : int; t0 : int; t1 : int }

let units_of counts =
  let k = Array.length counts in
  let total = Array.fold_left ( + ) 0 counts in
  let mean = max 1 ((total + k - 1) / k) in
  let cap = 2 * mean in
  let out = ref [] in
  let rec split s t0 t1 =
    if t1 - t0 > cap && t1 - t0 > 1 then begin
      let mid = (t0 + t1) / 2 in
      split s t0 mid;
      split s mid t1
    end
    else if t1 > t0 then out := { shard = s; t0; t1 } :: !out
  in
  for s = k - 1 downto 0 do
    split s 0 counts.(s)
  done;
  Array.of_list !out

let run_units ctxs (tasks : task array array) units pool c ~make_acc ~consume =
  let nu = Array.length units in
  let accs = Array.init nu (fun _ -> make_acc ()) in
  let ctrs = Array.init nu (fun _ -> fresh_counters ()) in
  let body u =
    let { shard = s; t0; t1 } = units.(u) in
    let cx = ctxs.(s) in
    let ws = make_ws cx in
    let ck = ctrs.(u) and acc = accs.(u) in
    for ti = t0 to t1 - 1 do
      let t = tasks.(s).(ti) in
      ws.assignment.(0) <- t.v0;
      if t.plen > 1 then ws.assignment.(1) <- t.v1;
      Array.blit t.st 0 ws.stack.(t.plen) 0 (2 * cx.natoms);
      enumerate cx ws ck ~level:t.plen ~stop:cx.nvars (fun () ->
          ck.emitted <- ck.emitted + 1;
          consume acc ws.assignment)
    done
  in
  (match pool with
  | Some p when Pool.size p > 1 && nu > 1 -> Pool.run p ~chunks:nu body
  | _ ->
      for u = 0 to nu - 1 do
        body u
      done);
  Array.iter
    (fun ck ->
      c.seeks <- c.seeks + ck.seeks;
      c.emitted <- c.emitted + ck.emitted)
    ctrs;
  accs

let sharded_drive ?order ?counters ?ctx ?partition ?view ?(subset = all_shards)
    ~shards db q ~make_acc ~consume =
  if shards < 1 then invalid_arg "Leapfrog.run_sharded: shards < 1";
  let ex = Exec.resolve ?ctx () in
  let order = match order with Some o -> o | None -> Query.attributes q in
  let c = match counters with Some c -> c | None -> fresh_counters () in
  with_metrics ex.Exec.metrics c @@ fun () ->
  if Array.length order = 0 then begin
    let cx =
      make_ctx ?budget:ex.Exec.budget ~metrics:ex.Exec.metrics ~order db q
    in
    let acc = make_acc () in
    run_seq cx c (fun a -> consume acc a);
    [| acc |]
  end
  else begin
    let view =
      match view with
      | Some (v : Shard.view) ->
          if v.Shard.k <> shards then
            invalid_arg "Leapfrog.run_sharded: view shard count mismatch";
          if v.Shard.attr <> order.(0) then
            invalid_arg "Leapfrog.run_sharded: view attribute mismatch";
          v
      | None -> Shard.view ?hook:partition ~attr:order.(0) ~k:shards db q
    in
    let ctxs =
      make_shard_ctxs ?pool:ex.Exec.pool ?budget:ex.Exec.budget
        ~lead:subset.lead ~metrics:ex.Exec.metrics ~order view
    in
    if sharded_empty ctxs then [| make_acc () |]
    else begin
      let tasks, counts = gen_sharded_tasks ctxs c ~sub:subset in
      let units = units_of counts in
      run_units ctxs tasks units ex.Exec.pool c ~make_acc ~consume
    end
  end

let count_sharded ?order ?counters ?ctx ?partition ?view ?subset ~shards db q =
  let accs =
    sharded_drive ?order ?counters ?ctx ?partition ?view ?subset ~shards db q
      ~make_acc:(fun () -> ref 0)
      ~consume:(fun r _ -> incr r)
  in
  Array.fold_left (fun acc r -> acc + !r) 0 accs

let run_sharded ?order ?counters ?ctx ?partition ?view ?subset ~shards db q =
  let order' = match order with Some o -> o | None -> Query.attributes q in
  let accs =
    sharded_drive ?order ?counters ?ctx ?partition ?view ?subset ~shards db q
      ~make_acc:(fun () -> ref [])
      ~consume:(fun r a -> r := Array.copy a :: !r)
  in
  Relation.make order'
    (Array.fold_left (fun acc r -> List.rev_append !r acc) [] accs)
