(* Delta-indexed columnar tries: the write path's storage structure.

   A stored relation is a base trie (sorted columnar, {!Trie}) plus a
   stack of small sorted side tries - one per applied write batch, each
   carrying a sign: +1 for an insert batch, -1 for a delete batch
   (tombstones).  Applying a batch builds only the O(d log d) side
   trie; the base is never touched, so old snapshots stay valid and a
   small write never pays a full O(n log n) rebuild.

   Reads merge the sides on seek: a trie node is a per-layer array of
   row ranges, and navigation (narrow / iter_keys / seek) gallops each
   layer independently, merging the sorted key streams.  The row
   arithmetic is exact because batches are normalized on apply: a
   delete side only ever holds rows that are live at apply time, an
   insert side only rows that are not - so the live row count of any
   subtree is simply the signed sum of the per-layer range sizes, and
   a key is present iff that sum is positive.

   Once the accumulated delta rows pass a threshold (a fraction of the
   live size, with a floor), [apply] compacts: a single k-way merge of
   the sorted layers (cancellation is exact for the same reason) feeds
   {!Trie.of_sorted_rows}, which is O(n * width) - columnarization
   only, no sort, no dedup hash. *)

type layer = { trie : Trie.t; sign : int }

type t = {
  attrs : string array;
  layers : layer array; (* 0 = base (sign +1), then sides oldest -> newest *)
  live : int; (* live rows = signed sum of layer sizes *)
  delta : int; (* rows across the non-base layers *)
  compactions : int; (* lifetime compaction count *)
  min_compact : int; (* delta-row floor below which we never compact *)
}

type node = (int * int) array (* per-layer [lo, hi) ranges *)

let attrs t = t.attrs

let width t = Array.length t.attrs

let live_rows t = t.live

let delta_rows t = t.delta

let side_count t = Array.length t.layers - 1

let compactions t = t.compactions

let base t = t.layers.(0).trie

let default_min_compact = 64

let of_relation ?scratch ?(min_compact = default_min_compact) rel =
  let attrs = Array.copy (Relation.attrs rel) in
  let base = Trie.build ?scratch ~order:attrs rel in
  {
    attrs;
    layers = [| { trie = base; sign = 1 } |];
    live = Trie.row_count base;
    delta = 0;
    compactions = 0;
    min_compact;
  }

let of_trie ?(min_compact = default_min_compact) trie =
  {
    attrs = Array.copy (Trie.attrs trie);
    layers = [| { trie; sign = 1 } |];
    live = Trie.row_count trie;
    delta = 0;
    compactions = 0;
    min_compact;
  }

(* --- merged navigation --- *)

let root t = Array.map (fun l -> (0, Trie.row_count l.trie)) t.layers

(* Live rows under a node: exact by the normalization invariant (every
   tombstone row cancels exactly one older live row with the same full
   row, hence the same prefix). *)
let node_live t (node : node) =
  let s = ref 0 in
  Array.iteri
    (fun i (lo, hi) -> s := !s + (t.layers.(i).sign * (hi - lo)))
    node;
  !s

let narrow t ~depth (node : node) v =
  let child =
    Array.mapi
      (fun i (lo, hi) ->
        if lo >= hi then (lo, lo)
        else
          match Trie.narrow t.layers.(i).trie ~depth ~lo ~hi v with
          | Some r -> r
          | None -> (lo, lo))
      node
  in
  if node_live t child > 0 then Some child else None

(* Merged key scan from per-layer cursors [pos] up to [his]: the
   smallest current key across layers, its child node, cursors
   advanced past it.  Skips fully-tombstoned keys (live <= 0). *)
let rec next_live t ~depth (pos : int array) (his : int array) =
  let k = Array.length pos in
  let best = ref 0 and found = ref false in
  for i = 0 to k - 1 do
    if pos.(i) < his.(i) then begin
      let key = Trie.key_at t.layers.(i).trie ~depth pos.(i) in
      if (not !found) || key < !best then begin
        best := key;
        found := true
      end
    end
  done;
  if not !found then None
  else begin
    let v = !best in
    let child =
      Array.init k (fun i ->
          if
            pos.(i) < his.(i)
            && Trie.key_at t.layers.(i).trie ~depth pos.(i) = v
          then begin
            let e =
              Trie.upper_bound t.layers.(i).trie ~depth ~lo:pos.(i)
                ~hi:his.(i) v
            in
            let r = (pos.(i), e) in
            pos.(i) <- e;
            r
          end
          else (pos.(i), pos.(i)))
    in
    if node_live t child > 0 then Some (v, child)
    else next_live t ~depth pos his
  end

let iter_keys t ~depth (node : node) f =
  let pos = Array.map fst node and his = Array.map snd node in
  let rec loop () =
    match next_live t ~depth pos his with
    | None -> ()
    | Some (v, child) ->
        f v child;
        loop ()
  in
  loop ()

(* Merged-on-seek: gallop every layer to its first key >= v, then take
   the smallest live merged key. *)
let seek t ~depth (node : node) v =
  let pos =
    Array.mapi
      (fun i (lo, hi) -> Trie.lower_bound t.layers.(i).trie ~depth ~lo ~hi v)
      node
  in
  let his = Array.map snd node in
  next_live t ~depth pos his

(* --- membership --- *)

let layer_mem (trie : Trie.t) (row : int array) =
  let w = Array.length row in
  let rec go depth lo hi =
    depth = w
    ||
    match Trie.narrow trie ~depth ~lo ~hi row.(depth) with
    | None -> false
    | Some (l, h) -> go (depth + 1) l h
  in
  Trie.row_count trie > 0 && go 0 0 (Trie.row_count trie)

(* Newest layer containing the full row decides its liveness. *)
let mem t row =
  if Array.length row <> width t then invalid_arg "Delta_trie.mem: width";
  let rec go i =
    i >= 0
    &&
    if layer_mem t.layers.(i).trie row then t.layers.(i).sign > 0
    else go (i - 1)
  in
  go (Array.length t.layers - 1)

(* --- materialization: k-way merge with exact cancellation --- *)

let compare_rows = Relation.compare_tuples

let materialize t =
  let w = width t in
  let k = Array.length t.layers in
  let pos = Array.make k 0 in
  let n = Array.map (fun l -> Trie.row_count l.trie) t.layers in
  let row_of i =
    let trie = t.layers.(i).trie in
    Array.init w (fun d -> Lb_util.Column.get (Trie.column trie d) pos.(i))
  in
  let out = ref [] and count = ref 0 in
  let rec loop () =
    let best = ref None in
    for i = 0 to k - 1 do
      if pos.(i) < n.(i) then begin
        let r = row_of i in
        match !best with
        | None -> best := Some r
        | Some b -> if compare_rows r b < 0 then best := Some r
      end
    done;
    match !best with
    | None -> ()
    | Some r ->
        let net = ref 0 in
        for i = 0 to k - 1 do
          if pos.(i) < n.(i) && compare_rows (row_of i) r = 0 then begin
            net := !net + t.layers.(i).sign;
            pos.(i) <- pos.(i) + 1
          end
        done;
        if !net > 0 then begin
          out := r :: !out;
          incr count
        end;
        loop ()
  in
  loop ();
  let arr = Array.make !count [||] in
  List.iteri (fun i r -> arr.(!count - 1 - i) <- r) !out;
  arr

let to_relation t = Relation.of_sorted_distinct t.attrs (materialize t)

let compact t =
  let rows = materialize t in
  {
    t with
    layers = [| { trie = Trie.of_sorted_rows t.attrs rows; sign = 1 } |];
    live = Array.length rows;
    delta = 0;
    compactions = t.compactions + 1;
  }

(* --- applying a write batch --- *)

type applied = { dt : t; added : int array array; removed : int array array }

(* Sorted dedup of a row batch (also validates widths). *)
let norm_batch ctx w rows =
  List.iter
    (fun r ->
      if Array.length r <> w then
        invalid_arg (Printf.sprintf "Delta_trie.%s: tuple width" ctx))
    rows;
  let arr = Array.of_list (List.map Array.copy rows) in
  Array.sort compare_rows arr;
  let out = ref [] and count = ref 0 in
  Array.iteri
    (fun i r ->
      if i = 0 || compare_rows arr.(i - 1) r <> 0 then begin
        out := r :: !out;
        incr count
      end)
    arr;
  let res = Array.make !count [||] in
  List.iteri (fun i r -> res.(!count - 1 - i) <- r) !out;
  res

let mem_sorted (rows : int array array) row =
  let lo = ref 0 and hi = ref (Array.length rows) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_rows rows.(mid) row < 0 then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length rows && compare_rows rows.(!lo) row = 0

(* Apply one batch, deletes first: tombstones are filtered to rows live
   before the batch, inserts to rows not live after the deletes.  The
   returned [added]/[removed] are the rows that actually changed state
   (sorted, duplicate-free) - what cache maintenance and partition
   patching need.  Auto-compacts past the threshold. *)
let apply ?(auto_compact = true) t ~inserts ~deletes =
  let w = width t in
  let removed =
    Array.of_list
      (List.filter (mem t) (Array.to_list (norm_batch "apply" w deletes)))
  in
  let added =
    Array.of_list
      (List.filter
         (fun r -> (not (mem t r)) || mem_sorted removed r)
         (Array.to_list (norm_batch "apply" w inserts)))
  in
  let side sign rows =
    if Array.length rows = 0 then []
    else [ { trie = Trie.of_sorted_rows t.attrs rows; sign } ]
  in
  let layers =
    Array.of_list
      (Array.to_list t.layers @ side (-1) removed @ side 1 added)
  in
  let live = t.live - Array.length removed + Array.length added in
  let delta = t.delta + Array.length removed + Array.length added in
  let dt =
    { t with layers; live; delta }
  in
  let dt =
    if
      auto_compact
      && (delta > max t.min_compact (live / 4) || side_count dt > 8)
    then compact dt
    else dt
  in
  (* The side tries need the full per-phase sets (a revived row is both
     tombstoned and re-inserted, keeping the normalization invariant),
     but the reported effect is the net: a row deleted and re-inserted
     in one batch neither became live nor stopped being live. *)
  let minus a b =
    if Array.length b = 0 then a
    else
      Array.of_list
        (List.filter (fun r -> not (mem_sorted b r)) (Array.to_list a))
  in
  { dt; added = minus added removed; removed = minus removed added }
