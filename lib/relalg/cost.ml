(* Structural cost estimates: exponents of N per strategy, derived from
   AGM bounds of (sub)queries.  The planner compares these, never raw
   timings - the point the paper makes is that the structure already
   decides. *)

let total_input db (q : Query.t) =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc (a : Query.atom) ->
      if Hashtbl.mem seen a.rel then acc
      else begin
        Hashtbl.replace seen a.rel ();
        match Database.find_opt db a.rel with
        | Some r -> acc + Relation.cardinality r
        | None -> acc
      end)
    0 q

let wcoj_exponent = Agm.rho_star

(* Largest AGM exponent over the prefixes of [order]: after joining the
   first k atoms the intermediate can reach N^{rho*(prefix)} on
   worst-case data (Theorem 3.1 is tight per subquery). *)
let prefix_exponent (q : Query.t) (order : int list) =
  let atoms = Array.of_list q in
  let rec go acc prefix = function
    | [] -> Some acc
    | i :: rest -> (
        let prefix = atoms.(i) :: prefix in
        match Agm.rho_star (List.rev prefix) with
        | None -> None
        | Some r -> go (Float.max acc r) prefix rest)
  in
  go 0.0 [] order

let binary_exponent db (q : Query.t) =
  let order = Binary_plan.greedy_order db q in
  match prefix_exponent q order with
  | None -> None
  | Some e -> Some (order, e)

let log10_work db ~exponent =
  let n = Database.max_cardinality db in
  if n <= 1 then 0.0 else exponent *. Float.log10 (float_of_int n)
