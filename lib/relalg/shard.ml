(* Hash partitioning for the sharded execution tier.  See shard.mli.

   The hash is a fixed 63-bit multiply-xor mix: it must be identical in
   every process that ever touches a shard index (engine drivers, the
   catalog's warm partition cache, the property tests), and it must not
   depend on anything runtime-varying, or sharded runs stop being
   replayable. *)

let shard_of ~k v =
  if k <= 1 then 0
  else begin
    let h = (v + 0x2545F4914F6CDD1) * 0x9E3779B97F4A7C1 in
    let h = h lxor (h lsr 29) in
    let h = h * 0x2545F4914F6CDD1 in
    let h = h lxor (h lsr 32) in
    (h land max_int) mod k
  end

let partition_col ~k ~col rel =
  if k < 1 then invalid_arg "Shard.partition_col: k < 1";
  if col < 0 || col >= Relation.width rel then
    invalid_arg "Shard.partition_col: column out of range";
  let attrs = Relation.attrs rel in
  let buckets = Array.make k [] in
  (* reversed per-bucket lists; Relation.make re-sorts anyway *)
  Array.iter
    (fun tup ->
      let s = shard_of ~k tup.(col) in
      buckets.(s) <- tup :: buckets.(s))
    (Relation.tuples rel);
  Array.map (fun rows -> Relation.make attrs rows) buckets

let partition ~k ~attr rel =
  match Relation.attr_index rel attr with
  | None -> invalid_arg ("Shard.partition: no attribute " ^ attr)
  | Some col -> partition_col ~k ~col rel

let co_partition ~k ~attr rels = List.map (partition ~k ~attr) rels

(* Monomorphic lexicographic tuple compare (same order as Relation's
   canonical tuple set). *)
let compare_tuples (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then if la < lb then -1 else 1
  else begin
    let i = ref 0 and r = ref 0 in
    while !r = 0 && !i < la do
      let x = a.(!i) and y = b.(!i) in
      if x < y then r := -1 else if x > y then r := 1;
      incr i
    done;
    !r
  end

(* k-way merge of the shards' sorted duplicate-free tuple arrays.  The
   shards of one partition are key-disjoint, so no dedup is needed here;
   Relation.make still validates and canonicalizes. *)
let merge_sorted shards =
  if Array.length shards = 0 then invalid_arg "Shard.merge_sorted: no shards";
  let attrs = Relation.attrs shards.(0) in
  Array.iter
    (fun r ->
      let a = Relation.attrs r in
      if Array.length a <> Array.length attrs
         || not (Array.for_all2 String.equal a attrs)
      then invalid_arg "Shard.merge_sorted: schema mismatch")
    shards;
  let arrs = Array.map Relation.tuples shards in
  let pos = Array.map (fun _ -> 0) arrs in
  let out = ref [] in
  let rec next () =
    let best = ref (-1) in
    Array.iteri
      (fun i p ->
        if p < Array.length arrs.(i) then
          match !best with
          | -1 -> best := i
          | b ->
              if compare_tuples arrs.(i).(p) arrs.(b).(pos.(b)) < 0 then
                best := i)
      pos;
    match !best with
    | -1 -> ()
    | b ->
        out := arrs.(b).(pos.(b)) :: !out;
        pos.(b) <- pos.(b) + 1;
        next ()
  in
  next ();
  Relation.make attrs (List.rev !out)

(* --- query views --- *)

type part = Whole of Relation.t | Parts of Relation.t array

type view = { attr : string; k : int; parts : part array }

let view ?hook ~attr ~k db (q : Query.t) =
  if k < 1 then invalid_arg "Shard.view: k < 1";
  let atoms = Array.of_list q in
  let found = ref false in
  let parts =
    Array.map
      (fun (a : Query.atom) ->
        (* the column of the first occurrence of [attr] in the stored
           relation; binding keeps first-occurrence columns in place *)
        let col = ref (-1) in
        Array.iteri (fun i x -> if x = attr && !col < 0 then col := i) a.attrs;
        if !col < 0 then Whole (Query.bind_atom db a)
        else begin
          found := true;
          let cached =
            match hook with Some h -> h a ~col:!col | None -> None
          in
          match cached with
          | Some raw_parts ->
              if Array.length raw_parts <> k then
                invalid_arg "Shard.view: hook returned wrong shard count";
              (* bind each raw shard: partitioning the stored relation
                 then binding equals binding then partitioning, because
                 the value at the partition column survives binding *)
              Parts
                (Array.map
                   (fun p ->
                     Query.bind_atom (Database.of_list [ (a.rel, p) ]) a)
                   raw_parts)
          | None -> Parts (partition ~k ~attr (Query.bind_atom db a))
        end)
      atoms
  in
  if not !found then
    invalid_arg ("Shard.view: attribute " ^ attr ^ " appears in no atom");
  { attr; k; parts }

(* --- merged depth-0 key streams --- *)

module Stream = struct
  module Column = Lb_util.Column

  type t = {
    cols : Column.t array;
    his : int array;
    pos : int array;
    mutable live : int;
    mutable cur : int;
  }

  let refresh s =
    let live = ref 0 and cur = ref 0 and first = ref true in
    Array.iteri
      (fun i p ->
        if p < s.his.(i) then begin
          incr live;
          let v = Column.unsafe_get s.cols.(i) p in
          if !first || v < !cur then begin
            cur := v;
            first := false
          end
        end)
      s.pos;
    s.live <- !live;
    if not !first then s.cur <- !cur

  let make cols =
    let s =
      {
        cols;
        his = Array.map Column.length cols;
        pos = Array.map (fun _ -> 0) cols;
        live = 0;
        cur = 0;
      }
    in
    refresh s;
    s

  let exhausted s = s.live = 0

  let cur s = s.cur

  let total s = Array.fold_left ( + ) 0 s.his

  let seek_geq s v =
    Array.iteri
      (fun i p ->
        if p < s.his.(i) && Column.unsafe_get s.cols.(i) p < v then
          s.pos.(i) <- Trie.gallop_geq s.cols.(i) p s.his.(i) v)
      s.pos;
    refresh s

  let advance_gt s v =
    Array.iteri
      (fun i p ->
        if p < s.his.(i) && Column.unsafe_get s.cols.(i) p <= v then
          s.pos.(i) <- Trie.gallop_gt s.cols.(i) p s.his.(i) v)
      s.pos;
    refresh s
end
