(* Generic Join (Ngo-Porat-Re-Rudra), Theorem 3.3.

   Variables are processed in a global order.  At each variable, the
   candidate values are the intersection of the matching value sets of
   every atom containing that variable, computed by enumerating the
   smallest set and probing the others - the intersection cost is
   proportional to the smallest set, which is the crux of the
   O(N^{rho*}) bound.

   Engine layout (the hot path is deliberately allocation-free):

   - Atoms are columnar tries (Trie).  Which atoms participate at each
     level, and which trie column they expose there, depends only on the
     schema and the variable order, so both are precomputed into [ctx].
   - Per-atom state is just a row range (lo, hi); the ranges live in a
     preallocated stack of flat int arrays, one row per level.
   - The leader's keys are enumerated in ascending order, so every
     non-leader keeps a cursor and probes by galloping search from it:
     total probe cost per level is amortized linear in the ranges
     scanned, and an exhausted cursor aborts the whole level early.

   An optional [?pool] (Lb_util.Pool) runs [count] and [answer] in
   parallel: the first variable's candidates are materialized as tasks
   (heavy candidates are split one level deeper to defuse skew), chunks
   of tasks are claimed dynamically by the pool's domains, and per-chunk
   counters and accumulators are merged at the end - so parallel runs
   produce identical answers and counter totals to sequential ones. *)

module Pool = Lb_util.Pool
module Budget = Lb_util.Budget
module Metrics = Lb_util.Metrics
module Exec = Lb_util.Exec
module Column = Lb_util.Column

type counters = { mutable intersections : int; mutable emitted : int }

let fresh_counters () = { intersections = 0; emitted = 0 }

(* --- precomputed join context --- *)

type ctx = {
  tries : Trie.t array;
  nvars : int;
  natoms : int;
  participants : int array array;
      (* participants.(l): atoms whose schema contains order.(l) *)
  pcols : Column.t array array;
      (* pcols.(l).(j): the trie column of participants.(l).(j) at the
         depth it has reached when level l is processed *)
  bud : Budget.t option;
      (* ticked once per enumerated leader key; shared across domains
         in parallel runs (cooperative, so tick totals may undercount
         under races - exhaustion still fires promptly on every
         domain) *)
}

(* Schema-driven part of the context; shared by the unsharded builder
   and the per-shard builders (a shard's tries expose the same schema,
   so the participant structure is identical). *)
let ctx_of_tries ?budget ~order tries =
  let natoms = Array.length tries in
  let nvars = Array.length order in
  let participants = Array.make nvars [||] in
  let pcols = Array.make nvars [||] in
  for l = 0 to nvars - 1 do
    let var = order.(l) in
    let ids = ref [] in
    for i = natoms - 1 downto 0 do
      let ats = Trie.attrs tries.(i) in
      for d = 0 to Array.length ats - 1 do
        if ats.(d) = var then ids := (i, d) :: !ids
      done
    done;
    participants.(l) <- Array.of_list (List.map fst !ids);
    pcols.(l) <-
      Array.of_list (List.map (fun (i, d) -> Trie.column tries.(i) d) !ids)
  done;
  { tries; nvars; natoms; participants; pcols; bud = budget }

let make_ctx ?pool ?budget ?(metrics = Metrics.disabled) ~order db
    (q : Query.t) =
  (* one logical build per execution, whatever the atom count - the unit
     the server's batch scheduler asserts sharing on *)
  Metrics.incr metrics "generic_join.trie_builds";
  let atoms = Array.of_list q in
  let natoms = Array.length atoms in
  let build i = Trie.build ~order (Query.bind_atom db atoms.(i)) in
  let tries =
    match pool with
    | Some p when Pool.size p > 1 && natoms > 1 ->
        let out = Array.make natoms None in
        Pool.run p ~chunks:natoms (fun i -> out.(i) <- Some (build i));
        Array.map Option.get out
    | _ -> Array.init natoms build
  in
  ctx_of_tries ?budget ~order tries

let has_empty_atom ctx =
  let e = ref false in
  Array.iter (fun t -> if Trie.row_count t = 0 then e := true) ctx.tries;
  !e

(* --- per-domain workspace --- *)

type ws = {
  stack : int array array; (* stack.(level): lo, hi per atom, flat *)
  cursors : int array array; (* cursors.(level): probe cursor per participant *)
  assignment : int array; (* parallel to the variable order *)
}

let make_ws ctx =
  {
    stack =
      Array.init (ctx.nvars + 1) (fun _ -> Array.make (max 1 (2 * ctx.natoms)) 0);
    cursors = Array.init (max 1 ctx.nvars) (fun _ -> Array.make (max 1 ctx.natoms) 0);
    assignment = Array.make (max 1 ctx.nvars) 0;
  }

let init_root ctx ws =
  let st = ws.stack.(0) in
  for i = 0 to ctx.natoms - 1 do
    st.(2 * i) <- 0;
    st.(2 * i + 1) <- Trie.row_count ctx.tries.(i)
  done

(* Enumerate all extensions of the current partial assignment from
   [level] up to [stop]; [on_leaf] fires with [ws] holding a complete
   prefix of length [stop].  [c.intersections] counts enumerated leader
   keys, as in the textbook cost accounting. *)
let rec enumerate ctx ws c ~level ~stop on_leaf =
  if level >= stop then on_leaf ()
  else begin
    let ps = ctx.participants.(level) in
    let np = Array.length ps in
    if np = 0 then invalid_arg "Generic_join: variable missing from all atoms";
    let cols = ctx.pcols.(level) in
    let st = ws.stack.(level) and st' = ws.stack.(level + 1) in
    Array.blit st 0 st' 0 (2 * ctx.natoms);
    (* leader: the participant with the smallest current range *)
    let lj = ref 0 and lsize = ref max_int in
    for j = 0 to np - 1 do
      let i = ps.(j) in
      let s = st.(2 * i + 1) - st.(2 * i) in
      if s < !lsize then begin
        lsize := s;
        lj := j
      end
    done;
    let lj = !lj in
    let leader = ps.(lj) in
    let lcol = cols.(lj) in
    let lhi = st.(2 * leader + 1) in
    let cur = ws.cursors.(level) in
    for j = 0 to np - 1 do
      cur.(j) <- st.(2 * ps.(j))
    done;
    let pos = ref st.(2 * leader) in
    let dead = ref false in
    while (not !dead) && !pos < lhi do
      let v = Column.unsafe_get lcol !pos in
      let e = Trie.gallop_gt lcol !pos lhi v in
      c.intersections <- c.intersections + 1;
      (match ctx.bud with Some b -> Budget.tick b | None -> ());
      (* probe the other participants, galloping from their cursors;
         leader keys ascend, so cursors only move forward *)
      let ok = ref true in
      let j = ref 0 in
      while !ok && !j < np do
        if !j <> lj then begin
          let i = ps.(!j) in
          let col = cols.(!j) in
          let hi = st.(2 * i + 1) in
          let p = Trie.gallop_geq col cur.(!j) hi v in
          cur.(!j) <- p;
          if p >= hi then begin
            (* this stream is exhausted: no later leader key matches *)
            ok := false;
            dead := true
          end
          else if Column.unsafe_get col p <> v then ok := false
          else begin
            st'.(2 * i) <- p;
            st'.(2 * i + 1) <- Trie.gallop_gt col p hi v
          end
        end;
        incr j
      done;
      if !ok then begin
        st'.(2 * leader) <- !pos;
        st'.(2 * leader + 1) <- e;
        ws.assignment.(level) <- v;
        enumerate ctx ws c ~level:(level + 1) ~stop on_leaf
      end;
      pos := e
    done
  end

(* --- sequential driver --- *)

let run_seq ctx c f =
  if not (has_empty_atom ctx) then begin
    let ws = make_ws ctx in
    init_root ctx ws;
    enumerate ctx ws c ~level:0 ~stop:ctx.nvars (fun () ->
        c.emitted <- c.emitted + 1;
        f ws.assignment)
  end

(* Record the per-call counter deltas into a metrics sink - also when a
   budget cuts the run short, so partial work is still attributed. *)
let with_metrics metrics c f =
  let i0 = c.intersections and e0 = c.emitted in
  Fun.protect
    ~finally:(fun () ->
      Metrics.add metrics "generic_join.intersections" (c.intersections - i0);
      Metrics.add metrics "generic_join.emitted" (c.emitted - e0))
    f

(* Iterate all answers; [f] receives the assignment in global-order
   (parallel to [order]).  The array is reused between calls. *)
let iter ?order ?counters ?ctx db (q : Query.t) f =
  let ex = Exec.resolve ?ctx () in
  let order = match order with Some o -> o | None -> Query.attributes q in
  let c = match counters with Some c -> c | None -> fresh_counters () in
  with_metrics ex.Exec.metrics c (fun () ->
      run_seq
        (make_ctx ?budget:ex.Exec.budget ~metrics:ex.Exec.metrics ~order db q)
        c f)

(* --- parallel driver --- *)

(* A task is a fully-probed assignment prefix (1 or 2 variables) plus
   the per-atom ranges after binding it. *)
type task = { plen : int; v0 : int; v1 : int; st : int array }

(* Candidates whose smallest participant range at the next level exceeds
   this are expanded one level deeper at task-generation time, so one
   heavy first value (skew) cannot serialize the run. *)
let split_threshold = 64

let gen_tasks ctx ws c =
  let tasks = ref [] and n = ref 0 in
  let push plen =
    incr n;
    tasks :=
      {
        plen;
        v0 = ws.assignment.(0);
        v1 = (if plen > 1 then ws.assignment.(1) else 0);
        st = Array.copy ws.stack.(plen);
      }
      :: !tasks
  in
  enumerate ctx ws c ~level:0 ~stop:1 (fun () ->
      let heavy =
        ctx.nvars >= 2
        &&
        let ps = ctx.participants.(1) in
        let st = ws.stack.(1) in
        let w = ref max_int in
        Array.iter
          (fun i ->
            let s = st.((2 * i) + 1) - st.(2 * i) in
            if s < !w then w := s)
          ps;
        !w > split_threshold
      in
      if heavy then enumerate ctx ws c ~level:1 ~stop:2 (fun () -> push 2)
      else push 1);
  (!n, Array.of_list (List.rev !tasks))

(* Run the whole join on [pool]; per-chunk accumulators are created with
   [make_acc] and filled via [consume acc assignment]; returns them. *)
let run_par ctx pool c ~make_acc ~consume =
  let gws = make_ws ctx in
  init_root ctx gws;
  let ntasks, tasks = gen_tasks ctx gws c in
  let per_chunk = max 1 (ntasks / (Pool.size pool * 8)) in
  let nchunks = (ntasks + per_chunk - 1) / per_chunk in
  let accs = Array.init nchunks (fun _ -> make_acc ()) in
  let ctrs = Array.init nchunks (fun _ -> fresh_counters ()) in
  Pool.run pool ~chunks:nchunks (fun k ->
      let ws = make_ws ctx in
      let ck = ctrs.(k) and acc = accs.(k) in
      let t1 = min ntasks ((k + 1) * per_chunk) in
      for ti = k * per_chunk to t1 - 1 do
        let t = tasks.(ti) in
        ws.assignment.(0) <- t.v0;
        if t.plen > 1 then ws.assignment.(1) <- t.v1;
        Array.blit t.st 0 ws.stack.(t.plen) 0 (2 * ctx.natoms);
        enumerate ctx ws ck ~level:t.plen ~stop:ctx.nvars (fun () ->
            ck.emitted <- ck.emitted + 1;
            consume acc ws.assignment)
      done);
  Array.iter
    (fun ck ->
      c.intersections <- c.intersections + ck.intersections;
      c.emitted <- c.emitted + ck.emitted)
    ctrs;
  accs

(* Parallel execution pays off only past the first variable; fall back
   to the sequential engine for trivial shapes or a size-1 pool. *)
let pool_applies ctx = function
  | Some p when Pool.size p > 1 && ctx.nvars >= 2 -> Some p
  | _ -> None

let count ?order ?counters ?ctx db q =
  let ex = Exec.resolve ?ctx () in
  let order = match order with Some o -> o | None -> Query.attributes q in
  let c = match counters with Some c -> c | None -> fresh_counters () in
  let ctx =
    make_ctx ?pool:ex.Exec.pool ?budget:ex.Exec.budget ~metrics:ex.Exec.metrics
      ~order db q
  in
  with_metrics ex.Exec.metrics c @@ fun () ->
  match pool_applies ctx ex.Exec.pool with
  | Some p when not (has_empty_atom ctx) ->
      let accs =
        run_par ctx p c ~make_acc:(fun () -> ref 0) ~consume:(fun r _ -> incr r)
      in
      Array.fold_left (fun acc r -> acc + !r) 0 accs
  | _ ->
      let n = ref 0 in
      run_seq ctx c (fun _ -> incr n);
      !n

let count_bounded ?order ?counters ?ctx db q =
  Budget.protect (fun () -> count ?order ?counters ?ctx db q)

let answer ?order ?ctx db q =
  let ex = Exec.resolve ?ctx () in
  let order = match order with Some o -> o | None -> Query.attributes q in
  let c = fresh_counters () in
  let ctx =
    make_ctx ?pool:ex.Exec.pool ?budget:ex.Exec.budget ~metrics:ex.Exec.metrics
      ~order db q
  in
  let rows =
    with_metrics ex.Exec.metrics c @@ fun () ->
    match pool_applies ctx ex.Exec.pool with
    | Some p when not (has_empty_atom ctx) ->
        let accs =
          run_par ctx p c
            ~make_acc:(fun () -> ref [])
            ~consume:(fun r a -> r := Array.copy a :: !r)
        in
        Array.fold_left (fun acc r -> List.rev_append !r acc) [] accs
    | _ ->
        let acc = ref [] in
        run_seq ctx c (fun a -> acc := Array.copy a :: !acc);
        !acc
  in
  Relation.make order rows

exception Found

let exists ?order ?ctx db q =
  let ex = Exec.resolve ?ctx () in
  let order = match order with Some o -> o | None -> Query.attributes q in
  let c = fresh_counters () in
  let ctx = make_ctx ?budget:ex.Exec.budget ~order db q in
  try
    run_seq ctx c (fun _ -> raise Found);
    false
  with Found -> true

(* --- sharded driver --- *)

(* Execution over a Shard.view: shard [s] sees its own tries for the
   partitioned atoms and a shared trie for the whole ones.  The level-0
   loop cannot run inside any single shard - the leader choice, the
   probe outcomes and the early abort all depend on the full key
   streams - so it is emulated over Shard.Stream views that merge the k
   shard columns of each participant.  Every surviving candidate x=v is
   then routed to shard [shard_of v], where the subtree under v is
   content-identical to the unsharded trie's (hash partitioning keeps
   all rows with x=v together and the trie sort is deterministic), so
   per-candidate work, counters and budget ticks replicate the
   unsharded run bit-for-bit. *)

(* A distributed participant executes only a subset of the shards:
   [owned s] says whether this process runs (and counts) shard [s]'s
   deep-level work, and exactly one participant is the [lead], which
   accounts the level-0 stream emulation and the logical trie build.
   Summing the counters reported by a full cover of participants (each
   shard owned exactly once, one lead) reproduces the single-process
   sharded totals bit for bit.  [all_shards] is the single-process
   case: own everything, lead. *)
type subset = { owned : int -> bool; lead : bool }

let all_shards = { owned = (fun _ -> true); lead = true }

let make_shard_ctxs ?pool ?budget ?(lead = true) ~metrics ~order
    (view : Shard.view) =
  if lead then Metrics.incr metrics "generic_join.trie_builds";
  let k = view.Shard.k in
  let parts = view.Shard.parts in
  let natoms = Array.length parts in
  let out = Array.init natoms (fun _ -> Array.make k None) in
  let jobs = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Shard.Whole _ -> jobs := (i, -1) :: !jobs
      | Shard.Parts _ ->
          for s = k - 1 downto 0 do
            jobs := (i, s) :: !jobs
          done)
    parts;
  let jobs = Array.of_list !jobs in
  let build (i, s) =
    match parts.(i) with
    | Shard.Whole r ->
        let t = Trie.build ~order r in
        for s = 0 to k - 1 do
          out.(i).(s) <- Some t
        done
    | Shard.Parts a -> out.(i).(s) <- Some (Trie.build ~order a.(s))
  in
  (match pool with
  | Some p when Pool.size p > 1 && Array.length jobs > 1 ->
      Pool.run p ~chunks:(Array.length jobs) (fun j -> build jobs.(j))
  | _ -> Array.iter build jobs);
  Array.init k (fun s ->
      ctx_of_tries ?budget ~order
        (Array.init natoms (fun i -> Option.get out.(i).(s))))

(* Any atom globally empty (all its shards empty) means no answers and,
   as in the unsharded run, no counting at all. *)
let sharded_empty ctxs =
  let k = Array.length ctxs and n = ctxs.(0).natoms in
  let e = ref false in
  for i = 0 to n - 1 do
    let tot = ref 0 in
    for s = 0 to k - 1 do
      tot := !tot + Trie.row_count ctxs.(s).tries.(i)
    done;
    if !tot = 0 then e := true
  done;
  !e

(* Level-0 emulation: reproduce [enumerate ~level:0]'s exact counter and
   budget accounting over the merged streams, routing each surviving
   candidate to its shard's task list (heavy candidates expand one level
   deeper inside the shard, as gen_tasks does). *)
let gen_sharded_tasks ctxs c ~sub =
  (* level-0 accounting belongs to the lead participant alone; everyone
     else replays the identical stream walk against a scratch counter
     (the walk itself is required: probe outcomes and the early abort
     decide which candidates exist at all) *)
  let c0 = if sub.lead then c else fresh_counters () in
  let k = Array.length ctxs in
  let ctx0 = ctxs.(0) in
  let ps = ctx0.participants.(0) in
  let np = Array.length ps in
  if np = 0 then invalid_arg "Generic_join: variable missing from all atoms";
  let streams =
    Array.map
      (fun i ->
        Shard.Stream.make
          (Array.init k (fun s -> Trie.column ctxs.(s).tries.(i) 0)))
      ps
  in
  (* leader: smallest total size, first wins - the same choice the
     unsharded engine makes on the full root ranges *)
  let lj = ref 0 and lsize = ref max_int in
  Array.iteri
    (fun j st ->
      let s = Shard.Stream.total st in
      if s < !lsize then begin
        lsize := s;
        lj := j
      end)
    streams;
  let lj = !lj in
  let tasks = Array.make k [] in
  let counts = Array.make k 0 in
  let wss = Array.init k (fun s -> make_ws ctxs.(s)) in
  Array.iteri (fun s ws -> init_root ctxs.(s) ws) wss;
  let ls = streams.(lj) in
  let dead = ref false in
  while (not !dead) && not (Shard.Stream.exhausted ls) do
    let v = Shard.Stream.cur ls in
    c0.intersections <- c0.intersections + 1;
    (match ctx0.bud with Some b when sub.lead -> Budget.tick b | _ -> ());
    let ok = ref true in
    let j = ref 0 in
    while !ok && !j < np do
      if !j <> lj then begin
        let st = streams.(!j) in
        Shard.Stream.seek_geq st v;
        if Shard.Stream.exhausted st then begin
          ok := false;
          dead := true
        end
        else if Shard.Stream.cur st <> v then ok := false
      end;
      incr j
    done;
    if !ok then begin
      let s = Shard.shard_of ~k v in
      if not (sub.owned s) then ()
      else begin
      let cx = ctxs.(s) in
      let ws = wss.(s) in
      ws.assignment.(0) <- v;
      let st0 = ws.stack.(0) and st1 = ws.stack.(1) in
      Array.blit st0 0 st1 0 (2 * cx.natoms);
      Array.iter
        (fun i ->
          match
            Trie.narrow cx.tries.(i) ~depth:0 ~lo:st0.(2 * i)
              ~hi:st0.((2 * i) + 1) v
          with
          | Some (lo, hi) ->
              st1.(2 * i) <- lo;
              st1.((2 * i) + 1) <- hi
          | None -> assert false (* v probed present in every participant *))
        ps;
      let push plen =
        counts.(s) <- counts.(s) + 1;
        tasks.(s) <-
          {
            plen;
            v0 = ws.assignment.(0);
            v1 = (if plen > 1 then ws.assignment.(1) else 0);
            st = Array.copy ws.stack.(plen);
          }
          :: tasks.(s)
      in
      let heavy =
        cx.nvars >= 2
        &&
        let ps1 = cx.participants.(1) in
        let st = ws.stack.(1) in
        let w = ref max_int in
        Array.iter
          (fun i ->
            let sz = st.((2 * i) + 1) - st.(2 * i) in
            if sz < !w then w := sz)
          ps1;
        !w > split_threshold
      in
      if heavy then enumerate cx ws c ~level:1 ~stop:2 (fun () -> push 2)
      else push 1
      end
    end;
    Shard.Stream.advance_gt ls v
  done;
  (Array.map (fun l -> Array.of_list (List.rev l)) tasks, counts)

(* Skew fallback: shard task lists exceeding 2x the mean are halved
   recursively into execution units, so one hot shard cannot serialize
   the pool.  Units are ordered by (shard, offset); merging per-unit
   counters in that order keeps totals deterministic. *)
type exec_unit = { shard : int; t0 : int; t1 : int }

let units_of counts =
  let k = Array.length counts in
  let total = Array.fold_left ( + ) 0 counts in
  let mean = max 1 ((total + k - 1) / k) in
  let cap = 2 * mean in
  let out = ref [] in
  let rec split s t0 t1 =
    if t1 - t0 > cap && t1 - t0 > 1 then begin
      let mid = (t0 + t1) / 2 in
      split s t0 mid;
      split s mid t1
    end
    else if t1 > t0 then out := { shard = s; t0; t1 } :: !out
  in
  for s = k - 1 downto 0 do
    split s 0 counts.(s)
  done;
  Array.of_list !out

let run_units ctxs (tasks : task array array) units pool c ~make_acc ~consume =
  let nu = Array.length units in
  let accs = Array.init nu (fun _ -> make_acc ()) in
  let ctrs = Array.init nu (fun _ -> fresh_counters ()) in
  let body u =
    let { shard = s; t0; t1 } = units.(u) in
    let cx = ctxs.(s) in
    let ws = make_ws cx in
    let ck = ctrs.(u) and acc = accs.(u) in
    for ti = t0 to t1 - 1 do
      let t = tasks.(s).(ti) in
      ws.assignment.(0) <- t.v0;
      if t.plen > 1 then ws.assignment.(1) <- t.v1;
      Array.blit t.st 0 ws.stack.(t.plen) 0 (2 * cx.natoms);
      enumerate cx ws ck ~level:t.plen ~stop:cx.nvars (fun () ->
          ck.emitted <- ck.emitted + 1;
          consume acc ws.assignment)
    done
  in
  (match pool with
  | Some p when Pool.size p > 1 && nu > 1 -> Pool.run p ~chunks:nu body
  | _ ->
      for u = 0 to nu - 1 do
        body u
      done);
  Array.iter
    (fun ck ->
      c.intersections <- c.intersections + ck.intersections;
      c.emitted <- c.emitted + ck.emitted)
    ctrs;
  accs

let sharded_drive ?order ?counters ?ctx ?partition ?view ?(subset = all_shards)
    ~shards db q ~make_acc ~consume =
  if shards < 1 then invalid_arg "Generic_join.run_sharded: shards < 1";
  let ex = Exec.resolve ?ctx () in
  let order = match order with Some o -> o | None -> Query.attributes q in
  let c = match counters with Some c -> c | None -> fresh_counters () in
  with_metrics ex.Exec.metrics c @@ fun () ->
  if Array.length order = 0 then begin
    (* no variable to partition on; the unsharded engine is the story *)
    let cx =
      make_ctx ?budget:ex.Exec.budget ~metrics:ex.Exec.metrics ~order db q
    in
    let acc = make_acc () in
    run_seq cx c (fun a -> consume acc a);
    [| acc |]
  end
  else begin
    let view =
      match view with
      | Some (v : Shard.view) ->
          if v.Shard.k <> shards then
            invalid_arg "Generic_join.run_sharded: view shard count mismatch";
          if v.Shard.attr <> order.(0) then
            invalid_arg "Generic_join.run_sharded: view attribute mismatch";
          v
      | None -> Shard.view ?hook:partition ~attr:order.(0) ~k:shards db q
    in
    let ctxs =
      make_shard_ctxs ?pool:ex.Exec.pool ?budget:ex.Exec.budget
        ~lead:subset.lead ~metrics:ex.Exec.metrics ~order view
    in
    if sharded_empty ctxs then [| make_acc () |]
    else begin
      let tasks, counts = gen_sharded_tasks ctxs c ~sub:subset in
      let units = units_of counts in
      run_units ctxs tasks units ex.Exec.pool c ~make_acc ~consume
    end
  end

let count_sharded ?order ?counters ?ctx ?partition ?view ?subset ~shards db q =
  let accs =
    sharded_drive ?order ?counters ?ctx ?partition ?view ?subset ~shards db q
      ~make_acc:(fun () -> ref 0)
      ~consume:(fun r _ -> incr r)
  in
  Array.fold_left (fun acc r -> acc + !r) 0 accs

let run_sharded ?order ?counters ?ctx ?partition ?view ?subset ~shards db q =
  let order' = match order with Some o -> o | None -> Query.attributes q in
  let accs =
    sharded_drive ?order ?counters ?ctx ?partition ?view ?subset ~shards db q
      ~make_acc:(fun () -> ref [])
      ~consume:(fun r a -> r := Array.copy a :: !r)
  in
  Relation.make order'
    (Array.fold_left (fun acc r -> List.rev_append !r acc) [] accs)
