(** Delta-indexed columnar tries: a base {!Trie} plus a stack of small
    sorted side tries (insert batches at sign +1, delete batches -
    tombstones - at sign -1), merged on seek.  Applying a write batch
    builds only an O(d log d) side trie; reads gallop every layer and
    merge the sorted key streams; past a threshold the layers are
    compacted by one k-way merge into a fresh base
    ({!Trie.of_sorted_rows} - no sort, no dedup hash).

    Values are immutable: [apply] returns a new value sharing every
    untouched layer, so database snapshots taken before a write remain
    valid.

    The normalization invariant that makes merged counts exact: a
    delete side only holds rows live at its apply time, an insert side
    only rows not live - so the live row count of any subtree is the
    signed sum of per-layer range sizes. *)

type t

(** A trie node: one row range per layer.  [root] is the whole trie;
    [narrow]/[iter_keys]/[seek] refine it one depth at a time. *)
type node

val attrs : t -> string array

val width : t -> int

(** Live rows (base + inserts - tombstones). *)
val live_rows : t -> int

(** Rows across the non-base layers (the compaction driver). *)
val delta_rows : t -> int

val side_count : t -> int

(** Lifetime compaction count. *)
val compactions : t -> int

(** The base layer's trie (after {!compact}: the whole content). *)
val base : t -> Trie.t

(** Wrap a relation as a delta trie with no sides.  [min_compact]
    (default 64) is the delta-row floor below which [apply] never
    compacts; above it, compaction triggers when delta rows exceed a
    quarter of the live size (or more than 8 sides accumulate).
    [scratch] is forwarded to {!Trie.build}: the sort's transient
    columns come from the arena instead of fresh off-heap buffers. *)
val of_relation : ?scratch:Lb_util.Arena.t -> ?min_compact:int -> Relation.t -> t

(** Adopt an already-built trie as the base layer, no sides - the
    zero-copy entry for tries reconstructed from a mapped snapshot
    image ({!Trie.of_columns}).  The trie is trusted to hold sorted,
    duplicate-free rows, as every {!Trie} constructor guarantees. *)
val of_trie : ?min_compact:int -> Trie.t -> t

val root : t -> node

(** Live rows under a node: the signed sum of its per-layer ranges. *)
val node_live : t -> node -> int

(** Child node for value [v] at [depth], if its subtree has live rows. *)
val narrow : t -> depth:int -> node -> int -> node option

(** Merged iteration of the distinct {e live} keys at [depth] under a
    node, ascending, with each key's child node.  Fully-tombstoned keys
    are skipped. *)
val iter_keys : t -> depth:int -> node -> (int -> node -> unit) -> unit

(** Merged-on-seek: the smallest live key [>= v] at [depth] under the
    node, with its child node - one galloping search per layer. *)
val seek : t -> depth:int -> node -> int -> (int * node) option

(** Liveness of a full row: the newest side containing it decides. *)
val mem : t -> int array -> bool

(** The sorted, duplicate-free live rows: a k-way merge with exact
    tombstone cancellation. *)
val materialize : t -> int array array

val to_relation : t -> Relation.t

(** Merge all layers into a fresh base (one k-way merge +
    columnarization). *)
val compact : t -> t

type applied = {
  dt : t;
  added : int array array;
      (** rows that actually became live (sorted, duplicate-free); a
          row deleted and re-inserted in the same batch is in neither
          [added] nor [removed] *)
  removed : int array array;  (** rows that actually stopped being live *)
}

(** Apply one write batch, deletes first: tombstones are filtered to
    rows live before the batch, inserts to rows not live after the
    deletes, so re-deleting an absent row or re-inserting a present one
    is a no-op.  [auto_compact] (default true) compacts past the
    threshold.  Raises [Invalid_argument] on ragged rows. *)
val apply :
  ?auto_compact:bool ->
  t ->
  inserts:int array list ->
  deletes:int array list ->
  applied
