(** Structural cost estimates for query planning: the exponents the
    paper's bounds attach to each evaluation strategy, packaged for the
    service planner.

    All estimates are data-light: they look only at relation
    cardinalities and the query hypergraph (rho* of subqueries via
    {!Agm}), never at value distributions - which is exactly the
    information the paper's worst-case statements are functions of. *)

(** Sum of the cardinalities of the relations the query mentions
    (each distinct relation counted once): the "input" of the
    O(input + output) acyclic bound. *)
val total_input : Database.t -> Query.t -> int

(** The worst-case-optimal exponent: rho* of the whole query
    ({!Agm.rho_star}). *)
val wcoj_exponent : Query.t -> float option

(** [binary_exponent db q] is the greedy left-deep order
    ({!Binary_plan.greedy_order}) together with the largest AGM
    exponent over its prefix subqueries - the worst-case size, as an
    exponent of N, of any intermediate the plan can materialize.
    Always at least [wcoj_exponent q] because the final prefix is the
    whole query.  [None] when rho* is undefined. *)
val binary_exponent : Database.t -> Query.t -> (int list * float) option

(** [log10_work db ~exponent] is [exponent * log10 (max N)]: the
    log-scale work estimate N^exponent evaluates to, 0 on an empty
    database. *)
val log10_work : Database.t -> exponent:float -> float
