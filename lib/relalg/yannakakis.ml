(* Yannakakis' algorithm for acyclic join queries.

   Acyclic queries are the tractable class of Section 4's structural
   discussion (tree primal graphs are acyclic; alpha-acyclicity is the
   hypergraph generalization).  The algorithm: build a join tree (GYO,
   Lb_hypergraph.Acyclic), run a full reducer (semijoin passes up then
   down the tree), then join bottom-up.  After full reduction every
   intermediate join result is contained in a projection of the final
   answer, so total work is O(input + output) up to hashing - no
   intermediate blowup, which experiment E14 contrasts against binary
   plans and Generic Join. *)

module Budget = Lb_util.Budget
module Metrics = Lb_util.Metrics
module Exec = Lb_util.Exec

type stats = { max_intermediate : int; semijoins : int }

exception Cyclic

(* Returns the reduced per-atom relations, the join tree (parent array),
   and a DFS post-order.  The optional budget is ticked once per
   semijoin - the unit the O(input + output) accounting charges. *)
let full_reducer ?budget db (q : Query.t) =
  let h = Query.hypergraph q in
  match Lb_hypergraph.Acyclic.join_tree h with
  | None -> raise Cyclic
  | Some parent ->
      let atoms = Array.of_list q in
      let rels = Array.map (Query.bind_atom db) atoms in
      let m = Array.length atoms in
      let children = Array.make m [] in
      let root = ref 0 in
      Array.iteri
        (fun i p -> if p >= 0 then children.(p) <- i :: children.(p) else root := i)
        parent;
      (* post-order via DFS *)
      let order = ref [] in
      let rec dfs i = List.iter dfs children.(i); order := i :: !order in
      dfs !root;
      let post = List.rev !order in
      (* list is reversed: !order is root-first (pre of reversed?); let's
         recompute: we push i after children, so !order is root last ...
         Actually we push i after recursing, so !order = i :: (children
         pushed earlier) means root is pushed LAST -> head of !order.
         So !order is reverse post-order; [post] computed below. *)
      let semijoins = ref 0 in
      let tick () = match budget with Some b -> Budget.tick b | None -> () in
      (* bottom-up: parent := parent semijoin child *)
      List.iter
        (fun i ->
          if parent.(i) >= 0 then begin
            tick ();
            rels.(parent.(i)) <- Relation.semijoin rels.(parent.(i)) rels.(i);
            incr semijoins
          end)
        post;
      (* top-down: child := child semijoin parent *)
      List.iter
        (fun i ->
          if parent.(i) >= 0 then begin
            tick ();
            rels.(i) <- Relation.semijoin rels.(i) rels.(parent.(i));
            incr semijoins
          end)
        (List.rev post);
      (rels, parent, post, !semijoins)

(* [post] above must order children before parents for the bottom-up
   pass.  The DFS pushes a node after its children, then we reverse;
   verify: order := i :: !order after children, so the root (processed
   last at top level) is at the head of !order; reversing puts the root
   last and children first.  Correct. *)

(* Record a run's stats into a metrics sink. *)
let record metrics (s : stats) =
  Metrics.add metrics "yannakakis.semijoins" s.semijoins;
  Metrics.add metrics "yannakakis.max_intermediate" s.max_intermediate

let answer ?ctx db (q : Query.t) =
  let ex = Exec.resolve ?ctx () in
  let budget = ex.Exec.budget in
  match q with
  | [] ->
      let s = { max_intermediate = 1; semijoins = 0 } in
      record ex.Exec.metrics s;
      (Relation.make [||] [ [||] ], s)
  | _ ->
      let rels, parent, post, semijoins = full_reducer ?budget db q in
      let acc = Array.copy rels in
      let max_inter = ref 0 in
      List.iter
        (fun i ->
          if parent.(i) >= 0 then begin
            (match budget with Some b -> Budget.tick b | None -> ());
            acc.(parent.(i)) <- Relation.natural_join acc.(parent.(i)) acc.(i);
            max_inter := max !max_inter (Relation.cardinality acc.(parent.(i)))
          end)
        post;
      let root =
        match List.rev post with r :: _ -> r | [] -> assert false
      in
      let s = { max_intermediate = !max_inter; semijoins } in
      record ex.Exec.metrics s;
      (acc.(root), s)

(* Boolean acyclic query: after full reduction the answer is nonempty iff
   every reduced relation is nonempty. *)
let boolean_answer ?ctx db (q : Query.t) =
  let ex = Exec.resolve ?ctx () in
  match q with
  | [] -> true
  | _ ->
      let rels, _, _, semijoins = full_reducer ?budget:ex.Exec.budget db q in
      record ex.Exec.metrics { max_intermediate = 0; semijoins };
      Array.for_all (fun r -> Relation.cardinality r > 0) rels

let is_acyclic (q : Query.t) =
  Lb_hypergraph.Acyclic.is_acyclic (Query.hypergraph q)

(* Enumeration with linear preprocessing and per-answer delay bounded by
   the query size (the regime of the constant-delay literature the paper
   cites for acyclic queries): after the full reducer, walk the join
   tree, indexing each relation by its shared attributes with its parent;
   every partial assignment extends to a full answer, so no time is spent
   on dead branches.  [f] receives each answer as an array parallel to
   [Query.attributes q]; the array is reused between calls. *)
let iter_answers ?ctx db (q : Query.t) f =
  let ex = Exec.resolve ?ctx () in
  match q with
  | [] -> f [||]
  | _ ->
      let rels, parent, post, _ = full_reducer ?budget:ex.Exec.budget db q in
      let m = Array.length rels in
      let attrs = Query.attributes q in
      let attr_index = Hashtbl.create 16 in
      Array.iteri (fun i x -> Hashtbl.replace attr_index x i) attrs;
      let root = match List.rev post with r :: _ -> r | [] -> assert false in
      let children = Array.make m [] in
      Array.iteri
        (fun i p -> if p >= 0 then children.(p) <- i :: children.(p))
        parent;
      (* for each non-root node: positions of the attrs shared with the
         parent relation, and a hash index of its tuples by those
         attrs *)
      let shared_positions i p =
        let pa = Relation.attrs rels.(p) in
        Array.to_list (Relation.attrs rels.(i))
        |> List.mapi (fun pos a -> (pos, a))
        |> List.filter (fun (_, a) -> Array.exists (( = ) a) pa)
        |> List.map fst |> Array.of_list
      in
      let index = Array.make m (Hashtbl.create 0) in
      let shared = Array.make m [||] in
      Array.iteri
        (fun i p ->
          if p >= 0 then begin
            let pos = shared_positions i p in
            shared.(i) <- pos;
            let h = Hashtbl.create (2 * Relation.cardinality rels.(i)) in
            Array.iter
              (fun tup -> Hashtbl.add h (Array.map (fun j -> tup.(j)) pos) tup)
              (Relation.tuples rels.(i));
            index.(i) <- h
          end)
        parent;
      let answer = Array.make (Array.length attrs) 0 in
      let write i tup =
        let ra = Relation.attrs rels.(i) in
        Array.iteri
          (fun pos v -> answer.(Hashtbl.find attr_index ra.(pos)) <- v)
          tup
      in
      (* Work through [nodes] (a frontier of not-yet-chosen tree nodes,
         each with an already-chosen parent); when empty, one full
         combination is complete.  A node's admissible tuples are found
         by probing its index with the parent's values at the shared
         attrs, already written into [answer]. *)
      let rec extend nodes =
        match nodes with
        | [] -> f answer
        | i :: rest ->
            let key =
              Array.map
                (fun pos ->
                  let a = (Relation.attrs rels.(i)).(pos) in
                  answer.(Hashtbl.find attr_index a))
                shared.(i)
            in
            List.iter
              (fun tup ->
                write i tup;
                extend (children.(i) @ rest))
              (Hashtbl.find_all index.(i) key)
      in
      Array.iter
        (fun tup ->
          write root tup;
          extend children.(root))
        (Relation.tuples rels.(root))
