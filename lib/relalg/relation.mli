(** Named relations: a schema of attribute names and a duplicate-free
    set of int tuples - the "table" of Section 2.1.  Any value type
    dictionary-encodes to ints without changing the complexity behaviour
    this library studies. *)

type t

(** Validates distinct attributes and uniform tuple width; deduplicates
    tuples. *)
val make : string array -> int array list -> t

(** Trusted constructor: [rows] must be duplicate-free (and, for the
    write path's downstream trie builds to stay sort-free, already
    lexicographically sorted).  No dedup, no copy of the rows -
    ownership transfers.  Raises on invalid schemas or ragged rows. *)
val of_sorted_distinct : string array -> int array array -> t

(** Monomorphic lexicographic comparison of two equal-width tuples -
    the order {!make} stores tuples in and the canonical row order of
    served answers. *)
val compare_tuples : int array -> int array -> int

val attrs : t -> string array

(** The tuples.  Callers must not mutate them. *)
val tuples : t -> int array array

val cardinality : t -> int

val width : t -> int

val mem : t -> int array -> bool

val attr_index : t -> string -> int option

val has_attr : t -> string -> bool

(** All values appearing anywhere, sorted. *)
val active_domain : t -> int list

(** Rename attributes via an association list. *)
val rename : t -> (string * string) list -> t

(** Projection (deduplicates). Raises on unknown attributes. *)
val project : t -> string array -> t

val select_eq : t -> string -> int -> t

val common_attrs : t -> t -> string list

(** Hash-based natural join; a cross product when no attributes are
    shared. *)
val natural_join : t -> t -> t

(** Tuples of the left operand that join with some tuple of the right. *)
val semijoin : t -> t -> t

(** Same schema (in order) and same tuples. *)
val equal : t -> t -> bool

(** Same content modulo column order. *)
val equal_modulo_order : t -> t -> bool

(** Requires disjoint schemas. *)
val cross_product : t -> t -> t

val pp : Format.formatter -> t -> unit
