(* Join evaluation through a (fractional hypertree) decomposition: the
   composition of the paper's Section 3 and Section 4 machinery.

   Given a tree decomposition of the query hypergraph:
   1. materialize each bag with a worst-case-optimal join of the atoms
      intersecting it (each atom projected to the bag).  Theorem 3.1
      bounds bag B by N^{rho*(B)} - the fractional hypertree width
      controls the blowup;
   2. the bags, viewed as fresh relations, form an ACYCLIC query (their
      hypergraph has the decomposition tree as a join tree), so
      Yannakakis finishes in O(bags + output).

   Every atom's scope is a clique of the primal graph and hence inside
   some bag, where its constraint is enforced in full; joining the bag
   relations therefore yields exactly the answer.

   This is how bounded-fhw classes of cyclic queries are evaluated in
   polynomial time - strictly more than bounded treewidth, strictly more
   than acyclicity.  The serve-tier planner routes through here when
   fhw beats rho*; [~compile] reuses the compiled loop-nest tier for
   the per-bag WCOJ (bit-identical to the interpreted path, falling
   back on queries the lowerer refuses). *)

module Td = Lb_graph.Tree_decomposition
module Exec = Lb_util.Exec
module Metrics = Lb_util.Metrics

type stats = {
  width : int; (* bag size - 1 of the decomposition used *)
  max_bag_tuples : int;
}

(* Decompose the query's primal graph. *)
let default_decomposition (q : Query.t) =
  let g = Query.primal_graph q in
  let _, order, _ = Lb_graph.Treewidth.best_effort g in
  Td.of_elimination_order g order

(* WCOJ on the temporary per-bag database: the compiled loop nest when
   asked (same answers, counters and ticks as interpreted Generic
   Join), the interpreter otherwise or when lowering refuses. *)
let wcoj ?ctx ~compile db q =
  if compile then
    match Compile.lower ~engine:Compile.Generic q with
    | ir -> Compile.answer ?ctx ir db q
    | exception Invalid_argument _ -> Generic_join.answer ?ctx db q
  else Generic_join.answer ?ctx db q

let bag_relation ?ctx ?(compile = false) db (q : Query.t) attrs_of_query bag =
  (* attributes of this bag *)
  let bag_attrs = Array.map (fun v -> attrs_of_query.(v)) bag in
  let in_bag a = Array.exists (( = ) a) bag_attrs in
  (* atoms intersecting the bag, projected to it *)
  let parts =
    List.filter_map
      (fun atom ->
        let bound = Query.bind_atom db atom in
        let keep =
          Array.to_list (Relation.attrs bound) |> List.filter in_bag
        in
        if keep = [] then None
        else Some (Relation.project bound (Array.of_list keep)))
      q
  in
  (* worst-case-optimal join of the parts via Generic Join on a
     temporary database; attributes not covered by any part cannot occur
     (the bag machinery only creates bags from primal cliques, whose
     vertices all lie in atoms) *)
  match parts with
  | [] -> Relation.make bag_attrs [ Array.map (fun _ -> 0) bag_attrs ]
  | _ ->
      let tmp_db, tmp_q, _ =
        List.fold_left
          (fun (db', q', i) rel ->
            let name = Printf.sprintf "__bag%d" i in
            ( Database.add db' name rel,
              Query.atom name (Relation.attrs rel) :: q',
              i + 1 ))
          (Database.empty, [], 0) parts
      in
      wcoj ?ctx ~compile tmp_db (List.rev tmp_q)

(* Materialize every bag, recording the deterministic per-bag counters
   ([decomposed_join.bags] / [decomposed_join.bag_tuples]). *)
let materialize_bags ex ~compile db q attrs bags =
  Array.map
    (fun bag ->
      let rel = bag_relation ~ctx:ex ~compile db q attrs bag in
      Metrics.incr ex.Exec.metrics "decomposed_join.bags";
      Metrics.add ex.Exec.metrics "decomposed_join.bag_tuples"
        (Relation.cardinality rel);
      rel)
    bags

let bag_query bag_rels =
  let bag_db, bag_q, _ =
    Array.fold_left
      (fun (db', q', i) rel ->
        let name = Printf.sprintf "__B%d" i in
        ( Database.add db' name rel,
          Query.atom name (Relation.attrs rel) :: q',
          i + 1 ))
      (Database.empty, [], 0) bag_rels
  in
  (bag_db, List.rev bag_q)

let answer ?ctx ?(compile = false) ?decomposition db (q : Query.t) =
  match q with
  | [] -> (Relation.make [||] [ [||] ], { width = -1; max_bag_tuples = 1 })
  | _ ->
      let ex = Exec.resolve ?ctx () in
      let td =
        match decomposition with
        | Some t -> t
        | None -> default_decomposition q
      in
      let attrs = Query.attributes q in
      let bags = Td.bags td in
      let bag_rels = materialize_bags ex ~compile db q attrs bags in
      let max_bag =
        Array.fold_left (fun acc r -> max acc (Relation.cardinality r)) 0 bag_rels
      in
      (* acyclic query over the bags *)
      let bag_db, bag_q = bag_query bag_rels in
      let result, _ = Yannakakis.answer ~ctx:ex bag_db bag_q in
      (result, { width = Td.width td; max_bag_tuples = max_bag })

(* Boolean variant: bag materialization + the semijoin-only reducer. *)
let boolean_answer ?ctx ?(compile = false) ?decomposition db (q : Query.t) =
  match q with
  | [] -> true
  | _ ->
      let ex = Exec.resolve ?ctx () in
      let td =
        match decomposition with
        | Some t -> t
        | None -> default_decomposition q
      in
      let attrs = Query.attributes q in
      let bag_rels = materialize_bags ex ~compile db q attrs (Td.bags td) in
      let bag_db, bag_q = bag_query bag_rels in
      Yannakakis.boolean_answer ~ctx:ex bag_db bag_q
