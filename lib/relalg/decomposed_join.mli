(** Join evaluation through a (fractional hypertree) decomposition: each
    bag is materialized with a worst-case-optimal join (bounded by
    N^{rho*(bag)}, Theorem 3.1) and the bags - an acyclic query whose
    join tree is the decomposition tree - are finished by Yannakakis.
    Evaluates bounded-fhw cyclic queries in polynomial time: strictly
    more than bounded treewidth, strictly more than acyclicity.

    The planner's decomposition route runs through {!answer}: [ctx]
    governs every bag join and the final Yannakakis pass (budget ticks
    at the engines' usual charging points, [decomposed_join.bags] /
    [decomposed_join.bag_tuples] counters plus the engines' own), and
    [~compile:true] lowers each bag's WCOJ through {!Compile}
    (bit-identical to the interpreted path; queries the lowerer
    refuses fall back silently). *)

type stats = {
  width : int;  (** bag size - 1 of the decomposition used *)
  max_bag_tuples : int;
}

(** Tree decomposition of the query's primal graph (exact treewidth when
    small). *)
val default_decomposition : Query.t -> Lb_graph.Tree_decomposition.t

(** Materialize one bag: worst-case-optimal join of the atoms
    intersecting it, each projected to the bag. *)
val bag_relation :
  ?ctx:Lb_util.Exec.t ->
  ?compile:bool ->
  Database.t ->
  Query.t ->
  string array ->
  int array ->
  Relation.t

(** Full answer plus bag statistics. *)
val answer :
  ?ctx:Lb_util.Exec.t ->
  ?compile:bool ->
  ?decomposition:Lb_graph.Tree_decomposition.t ->
  Database.t ->
  Query.t ->
  Relation.t * stats

(** Boolean answer: bag materialization + the semijoin reducer only. *)
val boolean_answer :
  ?ctx:Lb_util.Exec.t ->
  ?compile:bool ->
  ?decomposition:Lb_graph.Tree_decomposition.t ->
  Database.t ->
  Query.t ->
  bool
