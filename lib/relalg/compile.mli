(** The plan compilation tier: lower a WCOJ plan to a monomorphic loop
    nest over flat int arrays, cached by plan signature.

    A compiled plan ({!ir}) is the schema-level half of a
    worst-case-optimal join: for each variable of the global order, the
    flat list of (atom, trie depth) bindings participating at that
    level.  It depends only on the query text and the order - never on
    the data - so the query service keeps it in the plan LRU (charged
    by {!weight}) and reuses it across executions and batch windows.
    Per execution, the IR is resolved against freshly built tries and
    run by a monomorphic interpreter: direct column pointers,
    [Array.unsafe_get] on the hot path, no closures or option matches
    per column access.

    Contract: answers, work counters and budget-tick placement are
    bit-identical to the interpreted {!Generic_join} / {!Leapfrog}
    paths on every driver (sequential, Domain-parallel, sharded),
    including the partial counters a mid-query budget exhaustion
    leaves behind.  The compiled paths report to the same metric names
    ([generic_join.*] / [leapfrog.*]), so served counter streams are
    indistinguishable from interpreted runs. *)

type engine = Generic | Leapfrog

(** ["generic_join"] / ["leapfrog"] - the planner's vocabulary. *)
val engine_name : engine -> string

(** Unified work counters: [work] counts enumerated leader keys under
    {!Generic} (= [Generic_join.counters.intersections]) and seeks
    under {!Leapfrog} (= [Leapfrog.counters.seeks]). *)
type counters = { mutable work : int; mutable emitted : int }

val fresh_counters : unit -> counters

(** The compiled plan: flat level tables.  Level [l] of the loop nest
    binds variable [order.(l)] through slots
    [lv_off.(l) .. lv_off.(l+1) - 1] of [lv_atom] (participating atom
    id, ascending) and [lv_depth] (that atom's trie depth for the
    level).  Treat as immutable. *)
type ir = private {
  engine : engine;
  order : string array;
  nvars : int;
  natoms : int;
  rels : string array;
  lv_off : int array;
  lv_atom : int array;
  lv_depth : int array;
}

(** [lower ~engine q] compiles [q] against the global variable order
    (default: attributes in first-appearance order, the engines'
    default).  Pure schema work - no tries are built.  Raises
    [Invalid_argument] if an attribute is missing from the order or a
    variable appears in no atom. *)
val lower : engine:engine -> ?order:string array -> Query.t -> ir

(** Cache charge of an IR: the number of ints in its flat tables. *)
val weight : ir -> int

(** Human-readable dump of the loop nest, one line per level. *)
val describe : ir -> string list

(** Count the answers.  [ctx]'s pool runs the Domain-parallel driver,
    its budget is ticked at the engine's charging points, and its
    metrics sink receives the usual per-call deltas. *)
val count :
  ?counters:counters -> ?ctx:Lb_util.Exec.t -> ir -> Database.t -> Query.t ->
  int

(** [count] with budget exhaustion reified as [Exhausted]. *)
val count_bounded :
  ?counters:counters -> ?ctx:Lb_util.Exec.t -> ir -> Database.t -> Query.t ->
  int Lb_util.Budget.outcome

(** Materialize the answer (schema = the IR's variable order). *)
val answer : ?ctx:Lb_util.Exec.t -> ir -> Database.t -> Query.t -> Relation.t

(** Sharded execution over a {!Shard.view}, one resolved machine per
    shard; same composition and bit-identity guarantees as
    {!Generic_join.run_sharded} / {!Leapfrog.run_sharded}. *)
val run_sharded :
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  ?partition:(Query.atom -> col:int -> Relation.t array option) ->
  ?view:Shard.view ->
  shards:int ->
  ir ->
  Database.t ->
  Query.t ->
  Relation.t

val count_sharded :
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  ?partition:(Query.atom -> col:int -> Relation.t array option) ->
  ?view:Shard.view ->
  shards:int ->
  ir ->
  Database.t ->
  Query.t ->
  int
