(** Generic Join (Ngo-Porat-Re-Rudra): the worst-case-optimal join of
    Theorem 3.3.  Per variable, the candidate values are the
    intersection of every relevant atom's value set, enumerated from the
    smallest set - the step that caps total work at O(N^{rho*}).

    The engine works over columnar tries with galloping seeks and an
    allocation-free state stack; [count] and [answer] optionally run on
    a {!Lb_util.Pool} of domains, partitioning the first variable's
    candidates (heavy candidates are split one level deeper) and merging
    per-domain counters, with results identical to a sequential run.

    Resource governance: a [?budget] is ticked once per enumerated
    leader key (the unit the O(N^{rho*}) accounting charges), raising
    {!Lb_util.Budget.Budget_exhausted} when spent - under a pool, every
    domain observes the shared budget, so exhaustion stops all of them
    within a tick.  A [?metrics] sink receives the per-call
    [generic_join.intersections] / [generic_join.emitted] deltas, also
    when the run is cut short. *)

type counters = { mutable intersections : int; mutable emitted : int }

val fresh_counters : unit -> counters

(** Iterate all answers; [f] receives the assignment parallel to the
    variable [order] (default: attributes in order of first appearance).
    The array is reused between calls; raise inside [f] to stop. *)
val iter :
  ?order:string array ->
  ?counters:counters ->
  ?budget:Lb_util.Budget.t ->
  ?metrics:Lb_util.Metrics.t ->
  Database.t ->
  Query.t ->
  (int array -> unit) ->
  unit

(** Materialize the answer (schema = the variable order).  With [?pool],
    trie builds and the join itself run across the pool's domains. *)
val answer :
  ?order:string array ->
  ?budget:Lb_util.Budget.t ->
  ?metrics:Lb_util.Metrics.t ->
  ?pool:Lb_util.Pool.t ->
  Database.t ->
  Query.t ->
  Relation.t

(** Count the answers.  With [?pool], runs the Domain-parallel driver;
    the count and the final counter totals are identical to a sequential
    run on the same inputs. *)
val count :
  ?order:string array ->
  ?counters:counters ->
  ?budget:Lb_util.Budget.t ->
  ?metrics:Lb_util.Metrics.t ->
  ?pool:Lb_util.Pool.t ->
  Database.t ->
  Query.t ->
  int

(** [count] with budget exhaustion reified as [Exhausted]. *)
val count_bounded :
  ?order:string array ->
  ?counters:counters ->
  ?budget:Lb_util.Budget.t ->
  ?metrics:Lb_util.Metrics.t ->
  ?pool:Lb_util.Pool.t ->
  Database.t ->
  Query.t ->
  int Lb_util.Budget.outcome

exception Found

(** The Boolean join query: stop at the first answer. *)
val exists :
  ?order:string array -> ?budget:Lb_util.Budget.t -> Database.t -> Query.t -> bool
