(** Generic Join (Ngo-Porat-Re-Rudra): the worst-case-optimal join of
    Theorem 3.3.  Per variable, the candidate values are the
    intersection of every relevant atom's value set, enumerated from the
    smallest set - the step that caps total work at O(N^{rho*}).

    The engine works over columnar tries with galloping seeks and an
    allocation-free state stack; [count] and [answer] optionally run on
    a {!Lb_util.Pool} of domains, partitioning the first variable's
    candidates (heavy candidates are split one level deeper) and merging
    per-domain counters, with results identical to a sequential run. *)

type counters = { mutable intersections : int; mutable emitted : int }

val fresh_counters : unit -> counters

(** Iterate all answers; [f] receives the assignment parallel to the
    variable [order] (default: attributes in order of first appearance).
    The array is reused between calls; raise inside [f] to stop. *)
val iter :
  ?order:string array ->
  ?counters:counters ->
  Database.t ->
  Query.t ->
  (int array -> unit) ->
  unit

(** Materialize the answer (schema = the variable order).  With [?pool],
    trie builds and the join itself run across the pool's domains. *)
val answer :
  ?order:string array ->
  ?pool:Lb_util.Pool.t ->
  Database.t ->
  Query.t ->
  Relation.t

(** Count the answers.  With [?pool], runs the Domain-parallel driver;
    the count and the final counter totals are identical to a sequential
    run on the same inputs. *)
val count :
  ?order:string array ->
  ?counters:counters ->
  ?pool:Lb_util.Pool.t ->
  Database.t ->
  Query.t ->
  int

exception Found

(** The Boolean join query: stop at the first answer. *)
val exists : ?order:string array -> Database.t -> Query.t -> bool
