(** Generic Join (Ngo-Porat-Re-Rudra): the worst-case-optimal join of
    Theorem 3.3.  Per variable, the candidate values are the
    intersection of every relevant atom's value set, enumerated from the
    smallest set - the step that caps total work at O(N^{rho*}).

    The engine works over columnar tries with galloping seeks and an
    allocation-free state stack; [count] and [answer] optionally run on
    a {!Lb_util.Pool} of domains, partitioning the first variable's
    candidates (heavy candidates are split one level deeper) and merging
    per-domain counters, with results identical to a sequential run.

    Resource governance: a budget is ticked once per enumerated
    leader key (the unit the O(N^{rho*}) accounting charges), raising
    {!Lb_util.Budget.Budget_exhausted} when spent - under a pool, every
    domain observes the shared budget, so exhaustion stops all of them
    within a tick.  The metrics sink receives the per-call
    [generic_join.intersections] / [generic_join.emitted] deltas (also
    when the run is cut short) and one [generic_join.trie_builds] tick
    per execution context built.

    Execution resources are passed as a single [?ctx]
    ({!Lb_util.Exec.t}).  The historical [?pool] / [?budget] /
    [?metrics] labelled arguments live on in {!Legacy}, whose entries
    are alerted [deprecated] - an explicitly passed one overrides the
    corresponding [ctx] field (see {!Lb_util.Exec.resolve}). *)

type counters = { mutable intersections : int; mutable emitted : int }

val fresh_counters : unit -> counters

(** Iterate all answers; [f] receives the assignment parallel to the
    variable [order] (default: attributes in order of first appearance).
    The array is reused between calls; raise inside [f] to stop. *)
val iter :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  (int array -> unit) ->
  unit

(** Materialize the answer (schema = the variable order).  With a pool,
    trie builds and the join itself run across the pool's domains. *)
val answer :
  ?order:string array ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  Relation.t

(** Count the answers.  With a pool, runs the Domain-parallel driver;
    the count and the final counter totals are identical to a sequential
    run on the same inputs. *)
val count :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  int

(** [count] with budget exhaustion reified as [Exhausted]. *)
val count_bounded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  int Lb_util.Budget.outcome

exception Found

(** The Boolean join query: stop at the first answer. *)
val exists :
  ?order:string array ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  bool

(** The pre-{!Lb_util.Exec} entry points, carrying the resource triple
    as separate labelled arguments.  Each delegates through
    {!Lb_util.Exec.resolve} (an explicit argument overrides the [ctx]
    field) and is alerted so new call sites reach for [?ctx] instead. *)
module Legacy : sig
  val iter :
    ?order:string array ->
    ?counters:counters ->
    ?ctx:Lb_util.Exec.t ->
    ?budget:Lb_util.Budget.t ->
    ?metrics:Lb_util.Metrics.t ->
    Database.t ->
    Query.t ->
    (int array -> unit) ->
    unit
  [@@alert deprecated "pass ?ctx (Lb_util.Exec.make) instead"]

  val answer :
    ?order:string array ->
    ?ctx:Lb_util.Exec.t ->
    ?budget:Lb_util.Budget.t ->
    ?metrics:Lb_util.Metrics.t ->
    ?pool:Lb_util.Pool.t ->
    Database.t ->
    Query.t ->
    Relation.t
  [@@alert deprecated "pass ?ctx (Lb_util.Exec.make) instead"]

  val count :
    ?order:string array ->
    ?counters:counters ->
    ?ctx:Lb_util.Exec.t ->
    ?budget:Lb_util.Budget.t ->
    ?metrics:Lb_util.Metrics.t ->
    ?pool:Lb_util.Pool.t ->
    Database.t ->
    Query.t ->
    int
  [@@alert deprecated "pass ?ctx (Lb_util.Exec.make) instead"]

  val count_bounded :
    ?order:string array ->
    ?counters:counters ->
    ?ctx:Lb_util.Exec.t ->
    ?budget:Lb_util.Budget.t ->
    ?metrics:Lb_util.Metrics.t ->
    ?pool:Lb_util.Pool.t ->
    Database.t ->
    Query.t ->
    int Lb_util.Budget.outcome
  [@@alert deprecated "pass ?ctx (Lb_util.Exec.make) instead"]

  val exists :
    ?order:string array ->
    ?ctx:Lb_util.Exec.t ->
    ?budget:Lb_util.Budget.t ->
    Database.t ->
    Query.t ->
    bool
  [@@alert deprecated "pass ?ctx (Lb_util.Exec.make) instead"]
end

(** {2 Sharded execution}

    The sharded driver hash-partitions every atom containing the first
    variable of the order into [shards] co-partitioned pieces
    ({!Shard.view}) and runs one subproblem per shard, fanned out on
    [ctx]'s pool with a 2x-mean skew split.  The level-0 loop is
    emulated over the merged per-shard key streams, so answers, counter
    totals and budget ticks are bit-identical to the unsharded run.
    [?partition] (see {!Shard.view}'s [?hook]) lets a catalog supply
    warm raw-relation partitions; [?view] supplies a prebuilt view
    outright (its [k] must equal [shards] and its attribute the first
    variable of the order). *)

(** Materialize the answer through the sharded driver. *)
val run_sharded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  ?partition:(Query.atom -> col:int -> Relation.t array option) ->
  ?view:Shard.view ->
  shards:int ->
  Database.t ->
  Query.t ->
  Relation.t

(** Count the answers through the sharded driver. *)
val count_sharded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  ?partition:(Query.atom -> col:int -> Relation.t array option) ->
  ?view:Shard.view ->
  shards:int ->
  Database.t ->
  Query.t ->
  int
