(** Generic Join (Ngo-Porat-Re-Rudra): the worst-case-optimal join of
    Theorem 3.3.  Per variable, the candidate values are the
    intersection of every relevant atom's value set, enumerated from the
    smallest set - the step that caps total work at O(N^{rho*}).

    The engine works over columnar tries with galloping seeks and an
    allocation-free state stack; [count] and [answer] optionally run on
    a {!Lb_util.Pool} of domains, partitioning the first variable's
    candidates (heavy candidates are split one level deeper) and merging
    per-domain counters, with results identical to a sequential run.

    Resource governance: a budget is ticked once per enumerated
    leader key (the unit the O(N^{rho*}) accounting charges), raising
    {!Lb_util.Budget.Budget_exhausted} when spent - under a pool, every
    domain observes the shared budget, so exhaustion stops all of them
    within a tick.  The metrics sink receives the per-call
    [generic_join.intersections] / [generic_join.emitted] deltas (also
    when the run is cut short) and one [generic_join.trie_builds] tick
    per execution context built.

    Execution resources are passed as a single [?ctx]
    ({!Lb_util.Exec.t}); see {!Lb_util.Exec.make}. *)

type counters = { mutable intersections : int; mutable emitted : int }

val fresh_counters : unit -> counters

(** Iterate all answers; [f] receives the assignment parallel to the
    variable [order] (default: attributes in order of first appearance).
    The array is reused between calls; raise inside [f] to stop. *)
val iter :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  (int array -> unit) ->
  unit

(** Materialize the answer (schema = the variable order).  With a pool,
    trie builds and the join itself run across the pool's domains. *)
val answer :
  ?order:string array ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  Relation.t

(** Count the answers.  With a pool, runs the Domain-parallel driver;
    the count and the final counter totals are identical to a sequential
    run on the same inputs. *)
val count :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  int

(** [count] with budget exhaustion reified as [Exhausted]. *)
val count_bounded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  int Lb_util.Budget.outcome

exception Found

(** The Boolean join query: stop at the first answer. *)
val exists :
  ?order:string array ->
  ?ctx:Lb_util.Exec.t ->
  Database.t ->
  Query.t ->
  bool

(** {2 Sharded execution}

    The sharded driver hash-partitions every atom containing the first
    variable of the order into [shards] co-partitioned pieces
    ({!Shard.view}) and runs one subproblem per shard, fanned out on
    [ctx]'s pool with a 2x-mean skew split.  The level-0 loop is
    emulated over the merged per-shard key streams, so answers, counter
    totals and budget ticks are bit-identical to the unsharded run.
    [?partition] (see {!Shard.view}'s [?hook]) lets a catalog supply
    warm raw-relation partitions; [?view] supplies a prebuilt view
    outright (its [k] must equal [shards] and its attribute the first
    variable of the order). *)

(** Which slice of the sharded run this process executes.  [owned s]
    selects the shards whose deep-level work (and counters, emitted
    rows, heavy-split expansion) this participant performs; [lead]
    marks the one participant that accounts the shared level-0 stream
    emulation and the logical [generic_join.trie_builds] tick.  Over a
    cover of participants - every shard owned exactly once, exactly one
    lead - the reported counters sum to the single-process sharded
    totals bit for bit.  The default, {!all_shards}, owns everything
    and leads: the single-process case.  Ignored when the variable
    order is empty (the unsharded fallback runs whole). *)
type subset = { owned : int -> bool; lead : bool }

val all_shards : subset

(** Materialize the answer through the sharded driver. *)
val run_sharded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  ?partition:(Query.atom -> col:int -> Relation.t array option) ->
  ?view:Shard.view ->
  ?subset:subset ->
  shards:int ->
  Database.t ->
  Query.t ->
  Relation.t

(** Count the answers through the sharded driver. *)
val count_sharded :
  ?order:string array ->
  ?counters:counters ->
  ?ctx:Lb_util.Exec.t ->
  ?partition:(Query.atom -> col:int -> Relation.t array option) ->
  ?view:Shard.view ->
  ?subset:subset ->
  shards:int ->
  Database.t ->
  Query.t ->
  int
