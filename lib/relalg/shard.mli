(** Hash-partitioned relations: the data layout of the sharded execution
    tier.  A relation is split on one attribute into [k] shards by a
    deterministic integer hash, so every tuple with the same key value
    lands in the same shard — co-partitioning all atoms of a join query
    on the first join variable makes each per-key subproblem local to
    one shard, which is what lets the worst-case-optimal engines fan the
    work out without changing a single counter (the AGM bound is
    oblivious to layout).

    The partition is value-deterministic: [shard_of] depends only on the
    value and [k], never on tuple order or timing, so sharded runs are
    replayable and their merged results byte-stable. *)

(** [shard_of ~k v] is the shard index in [0, k)] of key value [v];
    deterministic, and the single definition every layer (engines,
    catalog cache, tests) must agree on.  [k <= 1] always yields 0. *)
val shard_of : k:int -> int -> int

(** [partition ~k ~attr rel] splits [rel] into [k] shards on attribute
    [attr] (raises [Invalid_argument] if missing).  Every tuple appears
    in exactly [shard_of ~k] of its [attr] value; schemas are shared. *)
val partition : k:int -> attr:string -> Relation.t -> Relation.t array

(** [partition_col ~k ~col rel] is {!partition} by column index — the
    form the catalog caches, since a stored relation's own column names
    differ from the query variables bound to them. *)
val partition_col : k:int -> col:int -> Relation.t -> Relation.t array

(** [co_partition ~k ~attr rels] partitions every relation on the shared
    join attribute with the same hash, aligning shard indices: tuples
    that can join on [attr] are in same-index shards of each relation. *)
val co_partition : k:int -> attr:string -> Relation.t list -> Relation.t array list

(** Deterministic union of per-shard results: k-way merge of the
    shards' (sorted, duplicate-free) tuple arrays.  All shards must
    share the first shard's schema. *)
val merge_sorted : Relation.t array -> Relation.t

(** A query's atoms partitioned for execution: atoms containing the
    partition attribute are split into [k] co-partitioned pieces; the
    rest stay whole and are shared by every shard's subproblem. *)
type part =
  | Whole of Relation.t  (** atom does not contain the partition attribute *)
  | Parts of Relation.t array  (** [k] shards, co-partitioned *)

type view = {
  attr : string;  (** the partition attribute *)
  k : int;
  parts : part array;  (** per atom, in query order *)
}

(** [view ~attr ~k db q] binds each atom of [q] (as the engines do) and
    partitions the ones containing [attr].  [?hook] short-circuits the
    per-atom partitioning with precomputed raw-relation shards — given
    the atom and the stored-relation column index carrying [attr], it
    may return cached partitions of the {e stored} relation, which are
    then bound per shard (binding commutes with partitioning because it
    never changes the value at the partition column).  This is how
    {!Catalog}'s warm sharded storage plugs in.  Raises like
    {!Query.bind_atom} on unknown relations or arity mismatches, and
    [Invalid_argument] if [attr] appears in no atom or [k < 1]. *)
val view :
  ?hook:(Query.atom -> col:int -> Relation.t array option) ->
  attr:string ->
  k:int ->
  Database.t ->
  Query.t ->
  view

(** Merged view of one partitioned atom's depth-0 key streams: the
    engines' level-0 loops (leader enumeration, probes, leapfrogging)
    must see the {e full} key sequence to replicate the unsharded run's
    counters bit-for-bit, but after partitioning the keys live in [k]
    separate sorted columns.  A stream keeps one galloping cursor per
    shard column and exposes the merged ascending view. *)
module Stream : sig
  type t

  (** [make cols] over the per-shard sorted depth-0 columns. *)
  val make : Lb_util.Column.t array -> t

  val exhausted : t -> bool

  (** Smallest current key across non-exhausted shard cursors.
      Undefined when {!exhausted}. *)
  val cur : t -> int

  (** Total remaining plus consumed length — the full column length, for
      leader selection. *)
  val total : t -> int

  (** Advance every shard cursor to its first key [>= v] / [> v]. *)
  val seek_geq : t -> int -> unit

  val advance_gt : t -> int -> unit
end
