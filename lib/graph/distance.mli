(** Shortest paths, eccentricities, diameter and radius - the stage of
    the fine-grained diameter results the paper cites: exact diameter
    (even 2 vs 3) needs ~nm under SETH, while one BFS 2-approximates in
    O(m). *)

(** BFS distances; unreachable vertices get [-1]. *)
val bfs : Graph.t -> int -> int array

(** Largest finite distance from a vertex; [None] if the graph is not
    connected from it. *)
val eccentricity : Graph.t -> int -> int option

(** Exact diameter by n BFS runs; [None] on disconnected/empty graphs.
    A [ctx] pool spreads the sources over domains (deterministic
    result); the [ctx] budget ticks per source; the [ctx] metrics sink
    counts ["distance.bfs"]. *)
val diameter : ?ctx:Lb_util.Exec.t -> Graph.t -> int option

(** Exact diameter by O(log d) Boolean products: repeated squaring of
    [A or I] through the matmul kernel, then binary search over the
    stored powers for the least [d] with [(A or I)^d] all-ones.  Agrees
    with {!diameter} (property-tested), including [None] on
    disconnected graphs (detected as a squaring fixpoint). *)
val diameter_matmul : ?ctx:Lb_util.Exec.t -> Graph.t -> int option

val radius : Graph.t -> int option

(** Eccentricity of one vertex: between diameter/2 and diameter. *)
val diameter_2approx : ?source:int -> Graph.t -> int option

(** All-pairs distances by repeated BFS. *)
val all_pairs : Graph.t -> int array array
