(** Partitioned subgraph isomorphism (Section 2.3): pick one host vertex
    per class so that pattern edges map to host edges.  The graph face
    of binary CSP - the classes are the variable domains. *)

type partition = int array array
(** [classes.(i)] lists the host vertices allowed as the image of
    pattern vertex [i]. *)

(** [find pattern host classes] returns the image array, or [None].
    [ctx]'s budget is ticked once per attempted extension of the
    partial map and its metrics sink counts the same search-tree nodes
    as [subgraph_iso.nodes].  Raises [Invalid_argument] if the
    partition size differs from the pattern's vertex count, and
    [Lb_util.Budget.Budget_exhausted] when the budget runs out. *)
val find :
  ?ctx:Lb_util.Exec.t -> Graph.t -> Graph.t -> partition -> int array option

(** Does [f] pick one vertex per class and map pattern edges to host
    edges? *)
val respects : Graph.t -> Graph.t -> partition -> int array -> bool

(** Plain subgraph isomorphism (the standard variant): an injective map
    sending pattern edges to host edges.  Same governance as {!find}. *)
val find_unpartitioned :
  ?ctx:Lb_util.Exec.t -> Graph.t -> Graph.t -> int array option

val is_subgraph_embedding : Graph.t -> Graph.t -> int array -> bool
