(* Colorful subgraph isomorphism ColSub(H) - the workload behind
   Marx's ETH lower bound (no n^{o(k/log k)} algorithm even for
   max-degree-3 patterns H).

   An instance colors every host vertex with a pattern vertex; a
   solution picks one host vertex per color so that pattern edges map
   to host edges.  Because the color classes partition the host,
   injectivity is automatic, which is exactly what makes the problem a
   clean binary CSP with primal graph H - and what lets a
   tree-decomposition dynamic program solve it in n^{tw(H)+1} instead
   of the backtracking's n^k.

   Three evaluation routes share this module and must agree
   bit-for-bit (the CSP route lives in [Lb_reductions.Colsub_to_csp],
   since [lb_graph] sits below [lb_csp] in the library stack):
   - backtracking: candidate-intersection search over the classes,
     delegating to [Subgraph_iso] for the decision form;
   - decomposition DP: per-bag tables of locally consistent
     assignments, weights merged bottom-up over a rooted tree
     decomposition of H;
   - CSP: the reduction module's encoding through [Lb_csp.Solver]. *)

module Bitset = Lb_util.Bitset
module Exec = Lb_util.Exec
module Budget = Lb_util.Budget
module Metrics = Lb_util.Metrics
module Td = Tree_decomposition

type t = { pattern : Graph.t; host : Graph.t; colors : int array }

let make ~pattern ~host ~colors =
  let k = Graph.vertex_count pattern in
  if Array.length colors <> Graph.vertex_count host then
    invalid_arg "Colsub.make: one color per host vertex required";
  Array.iter
    (fun c ->
      if c < 0 || c >= k then
        invalid_arg "Colsub.make: color out of pattern range")
    colors;
  { pattern; host; colors = Array.copy colors }

let pattern t = t.pattern
let host t = t.host
let colors t = Array.copy t.colors

let classes t =
  let k = Graph.vertex_count t.pattern in
  let buckets = Array.make k [] in
  for v = Array.length t.colors - 1 downto 0 do
    let c = t.colors.(v) in
    buckets.(c) <- v :: buckets.(c)
  done;
  Array.map Array.of_list buckets

let verify t f =
  Array.length f = Graph.vertex_count t.pattern
  && Array.for_all (fun img -> img >= 0 && img < Array.length t.colors) f
  && (let ok = ref true in
      Array.iteri (fun v img -> if t.colors.(img) <> v then ok := false) f;
      !ok)
  &&
  let ok = ref true in
  Graph.iter_edges
    (fun u v -> if not (Graph.has_edge t.host f.(u) f.(v)) then ok := false)
    t.pattern;
  !ok

(* -------- backtracking route -------- *)

let find_backtracking ?ctx t =
  Subgraph_iso.find ?ctx t.pattern t.host (classes t)

let charge_bt (ex : Exec.t) =
  (match ex.Exec.budget with Some b -> Budget.tick b | None -> ());
  Metrics.incr ex.Exec.metrics "colsub.bt.nodes"

let count_backtracking ?ctx t =
  let ex = Exec.resolve ?ctx () in
  let k = Graph.vertex_count t.pattern in
  if k = 0 then 1
  else begin
    let ng = Graph.vertex_count t.host in
    let class_sets =
      Array.map (fun c -> Bitset.of_list ng (Array.to_list c)) (classes t)
    in
    let order = Homomorphism.connectivity_order t.pattern in
    let image = Array.make k (-1) in
    let total = ref 0 in
    let rec go i =
      if i = k then incr total
      else begin
        let v = order.(i) in
        let cands = Bitset.copy class_sets.(v) in
        Bitset.iter
          (fun u ->
            if image.(u) >= 0 then
              Bitset.inter_into ~into:cands (Graph.neighbors t.host image.(u)))
          (Graph.neighbors t.pattern v);
        Bitset.iter
          (fun c ->
            charge_bt ex;
            image.(v) <- c;
            go (i + 1);
            image.(v) <- -1)
          cands
      end
    in
    go 0;
    !total
  end

(* -------- tree-decomposition dynamic program -------- *)

let default_decomposition t =
  let _, order, _ = Treewidth.best_effort t.pattern in
  Td.of_elimination_order t.pattern order

(* Per-bag table: the locally consistent assignments (rows, aligned
   with the sorted bag) and, per row, the number of extensions to the
   subtree below (weights).  Children are merged through hash tables
   keyed by the parent/child interface values, so each bag costs
   O(rows-in-bag * children), and the row enumeration is charged one
   budget tick + one [colsub.dp.rows] per candidate - the counter
   whose growth tracks n^{tw(H)+1}. *)
type bag_table = {
  vars : int array;  (* the bag, sorted ascending *)
  rows : int array array;  (* kept rows, weight > 0 *)
  weights : int array;
  groups : (string, int list) Hashtbl.t;
      (* parent-interface key -> row indices (root: single "" key) *)
  iface : int array;  (* positions (in [vars]) of the parent interface *)
}

let iface_key row (iface : int array) =
  String.concat "," (Array.to_list (Array.map (fun i -> string_of_int row.(i)) iface))

let positions_of (vars : int array) (subset : int array) =
  Array.map
    (fun v ->
      let rec search lo hi =
        if lo >= hi then invalid_arg "Colsub: interface var missing"
        else
          let mid = (lo + hi) / 2 in
          if vars.(mid) = v then mid
          else if vars.(mid) < v then search (mid + 1) hi
          else search lo mid
      in
      search 0 (Array.length vars))
    subset

let run_dp ex t td =
  (match Td.verify td t.pattern with
  | Ok () -> ()
  | Error _ ->
      invalid_arg "Colsub: decomposition does not decompose the pattern");
  let bags = Td.bags td in
  let nb = Array.length bags in
  let parent, children, preorder = Td.rooted td in
  let cls = classes t in
  (* In-bag pattern edges, as position pairs of the sorted bag. *)
  let bag_edges =
    Array.map
      (fun bag ->
        let m = Array.length bag in
        let acc = ref [] in
        for i = 0 to m - 1 do
          for j = i + 1 to m - 1 do
            if Graph.has_edge t.pattern bag.(i) bag.(j) then
              acc := (i, j) :: !acc
          done
        done;
        !acc)
      bags
  in
  let tables = Array.make nb None in
  (* children before parents *)
  for idx = nb - 1 downto 0 do
    let b = preorder.(idx) in
    Metrics.incr ex.Exec.metrics "colsub.dp.bags";
    let vars = bags.(b) in
    let m = Array.length vars in
    let edges = bag_edges.(b) in
    let child_tables =
      List.map
        (fun c ->
          match tables.(c) with
          | Some tb ->
              (* child's per-key sums, for the product below *)
              let sums = Hashtbl.create 64 in
              Hashtbl.iter
                (fun key idxs ->
                  let s =
                    List.fold_left (fun acc i -> acc + tb.weights.(i)) 0 idxs
                  in
                  Hashtbl.replace sums key s)
                tb.groups;
              (tb, sums, positions_of vars (Array.map (fun p -> tb.vars.(p)) tb.iface))
          | None -> assert false)
        children.(b)
    in
    let rows = ref [] and weights = ref [] and kept = ref 0 in
    let row = Array.make m (-1) in
    let rec enum pos =
      if pos = m then begin
        (match ex.Exec.budget with Some bu -> Budget.tick bu | None -> ());
        Metrics.incr ex.Exec.metrics "colsub.dp.rows";
        if List.for_all
             (fun (i, j) -> Graph.has_edge t.host row.(i) row.(j))
             edges
        then begin
          let w =
            List.fold_left
              (fun acc (_, sums, parent_iface_pos) ->
                if acc = 0 then 0
                else
                  let key = iface_key row parent_iface_pos in
                  match Hashtbl.find_opt sums key with
                  | Some s -> acc * s
                  | None -> 0)
              1 child_tables
          in
          if w > 0 then begin
            rows := Array.copy row :: !rows;
            weights := w :: !weights;
            incr kept
          end
        end
      end
      else
        Array.iter
          (fun hv ->
            row.(pos) <- hv;
            enum (pos + 1))
          cls.(vars.(pos))
    in
    (* A candidate row assigns every bag variable from its class; the
       whole enumeration is skipped when some class is empty. *)
    enum 0;
    let rows = Array.of_list (List.rev !rows) in
    let weights = Array.of_list (List.rev !weights) in
    let iface =
      if parent.(b) < 0 then [||]
      else
        positions_of vars
          (Array.of_seq
             (Seq.filter (fun v -> Td.bag_contains bags.(parent.(b)) v)
                (Array.to_seq vars)))
    in
    let groups = Hashtbl.create (max 16 !kept) in
    Array.iteri
      (fun i row ->
        let key = iface_key row iface in
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (i :: prev))
      rows;
    tables.(b) <- Some { vars; rows; weights; groups; iface }
  done;
  (bags, parent, children, preorder, tables)

let count_decomposed ?ctx ?decomposition t =
  let ex = Exec.resolve ?ctx () in
  if Graph.vertex_count t.pattern = 0 then 1
  else begin
    let td =
      match decomposition with Some d -> d | None -> default_decomposition t
    in
    let _, _, _, preorder, tables = run_dp ex t td in
    let root = preorder.(0) in
    match tables.(root) with
    | Some tb -> Array.fold_left ( + ) 0 tb.weights
    | None -> 0
  end

let find_decomposed ?ctx ?decomposition t =
  let ex = Exec.resolve ?ctx () in
  let k = Graph.vertex_count t.pattern in
  if k = 0 then Some [||]
  else begin
    let td =
      match decomposition with Some d -> d | None -> default_decomposition t
    in
    let _, _, children, preorder, tables = run_dp ex t td in
    let root = preorder.(0) in
    let tb_of b = match tables.(b) with Some tb -> tb | None -> assert false in
    let image = Array.make k (-1) in
    let assign tb i =
      Array.iteri (fun pos v -> image.(v) <- tb.rows.(i).(pos)) tb.vars
    in
    (* Descend: any stored row has weight > 0, hence extends below. *)
    let rec descend b i =
      let tb = tb_of b in
      assign tb i;
      List.iter
        (fun c ->
          let ctb = tb_of c in
          (* key of the child row under the parent/child interface,
             read off the already-assigned image *)
          let key =
            String.concat ","
              (Array.to_list
                 (Array.map
                    (fun p -> string_of_int image.(ctb.vars.(p)))
                    ctb.iface))
          in
          match Hashtbl.find_opt ctb.groups key with
          | Some (j :: _) -> descend c j
          | Some [] | None -> assert false)
        children.(b)
    in
    let rtb = tb_of root in
    if Array.length rtb.rows = 0 then None
    else begin
      descend root 0;
      Some image
    end
  end
