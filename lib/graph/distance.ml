(* Shortest-path distances, eccentricities, diameter and radius.

   The fine-grained canon the paper cites (Roditty-Vassilevska Williams
   [58], Abboud-Vassilevska Williams [4]) concerns exactly these: exact
   diameter needs ~nm time under SETH (even distinguishing 2 from 3),
   while a single BFS gives a 2-approximation in O(m).  Experiment E17
   measures the gap; Lb_reductions.Ov_to_diameter carries the hardness
   over from Orthogonal Vectors. *)

module Bitset = Lb_util.Bitset

(* BFS distances from [source]; unreachable = -1. *)
let bfs g source =
  let n = Graph.vertex_count g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Bitset.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  dist

(* Largest finite distance from [v]; [None] if some vertex is
   unreachable. *)
let eccentricity g v =
  let dist = bfs g v in
  let ecc = ref 0 and connected = ref true in
  Array.iter
    (fun d -> if d < 0 then connected := false else ecc := max !ecc d)
    dist;
  if !connected then Some !ecc else None

(* Exact diameter / radius by n BFS runs: O(nm).  [None] on disconnected
   or empty graphs.  A [ctx] pool spreads the BFS sources over domains
   (each writes its own slot, so the result is deterministic; the
   sequential path keeps its early exit on disconnection).  The [ctx]
   budget is ticked once per source; the [ctx] metrics sink counts BFS
   runs under "distance.bfs". *)
let diameter ?ctx g =
  let ex = Lb_util.Exec.resolve ?ctx () in
  let pool = ex.Lb_util.Exec.pool in
  let metrics = ex.Lb_util.Exec.metrics in
  let n = Graph.vertex_count g in
  let tick () =
    match ex.Lb_util.Exec.budget with
    | Some b -> Lb_util.Budget.tick b
    | None -> ()
  in
  if n = 0 then None
  else begin
    match pool with
    | Some p when n > 1 ->
        for _ = 1 to n do tick () done;
        let ecc = Array.make n (Some 0) in
        Lb_util.Pool.run p ~chunks:(min n 64) (fun chunk ->
            let per = (n + min n 64 - 1) / min n 64 in
            let lo = chunk * per and hi = min n ((chunk + 1) * per) in
            for v = lo to hi - 1 do
              ecc.(v) <- eccentricity g v
            done);
        Lb_util.Metrics.add metrics "distance.bfs" n;
        Array.fold_left
          (fun acc e ->
            match (acc, e) with
            | Some b, Some e -> Some (max b e)
            | _ -> None)
          (Some 0) ecc
    | _ ->
        let best = ref (Some 0) in
        let bfs_runs = ref 0 in
        (try
           for v = 0 to n - 1 do
             tick ();
             incr bfs_runs;
             match (eccentricity g v, !best) with
             | Some e, Some b -> best := Some (max e b)
             | None, _ ->
                 best := None;
                 raise Exit
             | _, None -> raise Exit
           done
         with Exit -> ());
        Lb_util.Metrics.add metrics "distance.bfs" !bfs_runs;
        !best
  end

(* Diameter through the matmul kernel: repeated Boolean squaring of
   R = A or I gives reachability within 2^j steps; once R^(2^k) is
   all-ones, binary search down over the stored powers pins the least d
   with R^d all-ones, which is the diameter.  O(log d) Boolean products
   — the "fast matrix multiplication" route to distances, against which
   E17 compares the n-BFS baseline.  If squaring reaches a fixpoint
   short of all-ones the graph is disconnected: [None]. *)
let diameter_matmul ?ctx g =
  let module B = Lb_util.Matrix.Bool in
  let n = Graph.vertex_count g in
  if n = 0 then None
  else begin
    let r1 =
      B.init n n (fun i j -> i = j || Graph.has_edge g i j)
    in
    if B.all_set r1 then Some (if n = 1 then 0 else 1)
    else begin
      (* powers.(j) = R^(2^j); square until all-ones or fixpoint *)
      let powers = ref [ r1 ] in
      let rec grow last =
        let next = B.mul ?ctx last last in
        if B.all_set next then (
          powers := next :: !powers;
          true)
        else if B.equal next last then false (* disconnected *)
        else (
          powers := next :: !powers;
          grow next)
      in
      if not (grow r1) then None
      else begin
        let ps = Array.of_list (List.rev !powers) in
        (* ps.(kk) is all-ones, ps.(kk-1) is not: diameter is in
           (2^(kk-1), 2^kk].  Walk the lower bits down: keep an
           accumulator acc = R^lo that is NOT all-ones and try adding
           each power of two below. *)
        let kk = Array.length ps - 1 in
        let lo = ref (1 lsl (kk - 1)) in
        let acc = ref ps.(kk - 1) in
        for j = kk - 2 downto 0 do
          let cand = B.mul ?ctx !acc ps.(j) in
          if not (B.all_set cand) then begin
            acc := cand;
            lo := !lo + (1 lsl j)
          end
        done;
        Some (!lo + 1)
      end
    end
  end

let radius g =
  let n = Graph.vertex_count g in
  if n = 0 then None
  else begin
    let best = ref max_int and ok = ref true in
    for v = 0 to n - 1 do
      match eccentricity g v with
      | Some e -> best := min !best e
      | None -> ok := false
    done;
    if !ok then Some !best else None
  end

(* One BFS from an arbitrary vertex: its eccentricity e satisfies
   e <= diameter <= 2e (triangle inequality through the root) - the
   O(m) 2-approximation that SETH says cannot be improved to a
   (3/2 - eps)-approximation in subquadratic time. *)
let diameter_2approx ?(source = 0) g =
  if Graph.vertex_count g = 0 then None
  else eccentricity g source

(* All-pairs shortest paths by repeated BFS (dense output: n x n). *)
let all_pairs g =
  Array.init (Graph.vertex_count g) (fun v -> bfs g v)
