(* Clique algorithms.

   - [find_bruteforce]: the O(n^k) search of Section 5 (with bitset
     pruning: extend partial cliques only by common neighbors).
   - [find_matmul]: Nesetril-Poljak (Section 8): for k = 3t, build the
     auxiliary graph whose vertices are the t-cliques and detect a
     triangle there with Boolean matrix multiplication, giving
     O(n^{omega k/3}) with our word-packed matmul as the practical
     stand-in for fast matrix multiplication.
   - [max_clique]: Bron-Kerbosch with pivoting (used by tests to
     cross-check and by the planted-clique workloads). *)

module Bitset = Lb_util.Bitset
module Matrix = Lb_util.Matrix

(* Enumerate k-cliques: backtracking over vertices in increasing order,
   restricting candidates to common neighbors.  Calls [f] with each
   clique (reused array).  Raising [Exit] inside [f] stops early. *)
let iter_cliques g k f =
  let n = Graph.vertex_count g in
  let current = Array.make (max k 1) 0 in
  if k = 0 then f [||]
  else begin
    let rec extend depth candidates =
      Bitset.iter
        (fun v ->
          current.(depth) <- v;
          if depth = k - 1 then f (Array.sub current 0 k)
          else begin
            (* candidates after v: common neighbors with index > v *)
            let next = Bitset.inter candidates (Graph.neighbors g v) in
            (* keep only vertices > v to avoid permutations *)
            let pruned = Bitset.copy next in
            Bitset.iter (fun u -> if u <= v then Bitset.remove pruned u) next;
            extend (depth + 1) pruned
          end)
        candidates
    in
    let all = Bitset.create n in
    Bitset.fill all;
    extend 0 all
  end

let find_bruteforce g k =
  let result = ref None in
  (try
     iter_cliques g k (fun c ->
         result := Some (Array.copy c);
         raise Exit)
   with Exit -> ());
  !result

let count_cliques g k =
  let c = ref 0 in
  iter_cliques g k (fun _ -> incr c);
  !c

(* All t-cliques as sorted arrays. *)
let list_cliques g t =
  let acc = ref [] in
  iter_cliques g t (fun c -> acc := Array.copy c :: !acc);
  List.rev !acc

(* Nesetril-Poljak: detect a 3t-clique via triangle detection on the
   t-clique auxiliary graph.  [k] must be positive and divisible by 3.
   Returns a witness clique if one exists.  The auxiliary triangle is
   found through the Boolean product M*M (the kernel's blocked/M4R
   paths, Domain-parallel under a [ctx] pool) rather than per-pair row
   intersections. *)
let find_matmul ?ctx g k =
  if k <= 0 || k mod 3 <> 0 then
    invalid_arg "Clique.find_matmul: k must be a positive multiple of 3";
  let t = k / 3 in
  let cliques = Array.of_list (list_cliques g t) in
  let nc = Array.length cliques in
  if nc = 0 then None
  else begin
    (* auxiliary adjacency: two disjoint t-cliques are adjacent iff their
       union is a 2t-clique *)
    let joined a b =
      let ok = ref true in
      Array.iter
        (fun u ->
          Array.iter
            (fun v -> if u = v || not (Graph.has_edge g u v) then ok := false)
            b)
        a;
      !ok
    in
    let m = Matrix.Bool.create nc nc in
    for i = 0 to nc - 1 do
      for j = i + 1 to nc - 1 do
        if joined cliques.(i) cliques.(j) then begin
          Matrix.Bool.set m i j true;
          Matrix.Bool.set m j i true
        end
      done
    done;
    (* find a triangle (i,j,l) in the auxiliary graph using the product:
       (M*M)(i,j) && M(i,j). *)
    let m2 = Matrix.Bool.mul ?ctx m m in
    let witness = ref None in
    (try
       for i = 0 to nc - 1 do
         for j = i + 1 to nc - 1 do
           if Matrix.Bool.get m i j && Matrix.Bool.get m2 i j then begin
             (* recover l *)
             for l = 0 to nc - 1 do
               if !witness = None && Matrix.Bool.get m i l && Matrix.Bool.get m j l
               then begin
                 let all =
                   Array.concat [ cliques.(i); cliques.(j); cliques.(l) ]
                 in
                 Array.sort compare all;
                 witness := Some all;
                 raise Exit
               end
             done
           end
         done
       done
     with Exit -> ());
    !witness
  end

(* Bron-Kerbosch with pivoting: maximum clique. *)
let max_clique g =
  let n = Graph.vertex_count g in
  let best = ref [||] in
  let rec bk r p x =
    if Bitset.is_empty p && Bitset.is_empty x then begin
      if List.length r > Array.length !best then
        best := Array.of_list (List.sort compare r)
    end
    else begin
      (* pivot: vertex of p union x with most neighbors in p *)
      let pivot = ref (-1) and pivot_deg = ref (-1) in
      let consider u =
        let d = Bitset.inter_cardinal (Graph.neighbors g u) p in
        if d > !pivot_deg then begin
          pivot_deg := d;
          pivot := u
        end
      in
      Bitset.iter consider p;
      Bitset.iter consider x;
      let candidates =
        if !pivot >= 0 then Bitset.diff p (Graph.neighbors g !pivot)
        else Bitset.copy p
      in
      Bitset.iter
        (fun v ->
          let nv = Graph.neighbors g v in
          bk (v :: r) (Bitset.inter p nv) (Bitset.inter x nv);
          Bitset.remove p v;
          Bitset.add x v)
        candidates
    end
  in
  let p = Bitset.create n in
  Bitset.fill p;
  bk [] p (Bitset.create n);
  !best
