(* Partitioned subgraph isomorphism (Section 2.3).

   Input: pattern H on [0,h), host G, and a partition of (a subset of)
   V(G) into h classes - class i holds the allowed images of pattern
   vertex i.  Find an injective map picking one vertex per class such
   that pattern edges map to host edges.  As the paper notes, this is
   exactly binary CSP with primal graph H, and the solver below is the
   same candidate-intersection backtracking as [Homomorphism.find] plus
   the per-class restriction (injectivity across classes is automatic
   when classes are disjoint; within-class collisions cannot happen since
   one vertex is chosen per class). *)

module Bitset = Lb_util.Bitset
module Exec = Lb_util.Exec
module Budget = Lb_util.Budget
module Metrics = Lb_util.Metrics

type partition = int array array
(* classes.(i) = host vertices allowed as the image of pattern vertex i *)

(* One tick / one [subgraph_iso.nodes] count per attempted extension of
   the partial map - the search-tree node count both solvers share. *)
let charge budget metrics =
  (match budget with Some b -> Budget.tick b | None -> ());
  Metrics.incr metrics "subgraph_iso.nodes"

let find ?ctx pattern host (classes : partition) =
  let ex = Exec.resolve ?ctx () in
  let h = Graph.vertex_count pattern in
  if Array.length classes <> h then invalid_arg "Subgraph_iso.find";
  let ng = Graph.vertex_count host in
  if h = 0 then Some [||]
  else begin
    let class_sets =
      Array.map (fun c -> Bitset.of_list ng (Array.to_list c)) classes
    in
    let order = Homomorphism.connectivity_order pattern in
    let image = Array.make h (-1) in
    let rec go i =
      if i = h then true
      else begin
        let v = order.(i) in
        let cands = Bitset.copy class_sets.(v) in
        Bitset.iter
          (fun u ->
            if image.(u) >= 0 then
              Bitset.inter_into ~into:cands (Graph.neighbors host image.(u)))
          (Graph.neighbors pattern v);
        let found = ref false in
        (try
           Bitset.iter
             (fun c ->
               charge ex.Exec.budget ex.Exec.metrics;
               image.(v) <- c;
               if go (i + 1) then begin
                 found := true;
                 raise Exit
               end
               else image.(v) <- -1)
             cands
         with Exit -> ());
        !found
      end
    in
    if go 0 then Some (Array.copy image) else None
  end

(* Plain (unpartitioned) subgraph isomorphism, the "standard variant"
   the paper contrasts with: an INJECTIVE map sending pattern edges to
   host edges.  Same candidate-intersection backtracking plus a
   used-vertex mask. *)
let find_unpartitioned ?ctx pattern host =
  let ex = Exec.resolve ?ctx () in
  let h = Graph.vertex_count pattern in
  let ng = Graph.vertex_count host in
  if h = 0 then Some [||]
  else if h > ng then None
  else begin
    let order = Homomorphism.connectivity_order pattern in
    let image = Array.make h (-1) in
    let used = Array.make ng false in
    let rec go i =
      if i = h then true
      else begin
        let v = order.(i) in
        let cands = Bitset.create ng in
        Bitset.fill cands;
        Bitset.iter
          (fun u ->
            if image.(u) >= 0 then
              Bitset.inter_into ~into:cands (Graph.neighbors host image.(u)))
          (Graph.neighbors pattern v);
        let found = ref false in
        (try
           Bitset.iter
             (fun c ->
               if not used.(c) then begin
                 charge ex.Exec.budget ex.Exec.metrics;
                 image.(v) <- c;
                 used.(c) <- true;
                 if go (i + 1) then begin
                   found := true;
                   raise Exit
                 end
                 else begin
                   used.(c) <- false;
                   image.(v) <- -1
                 end
               end)
             cands
         with Exit -> ());
        !found
      end
    in
    if go 0 then Some (Array.copy image) else None
  end

let is_subgraph_embedding pattern host f =
  Array.length f = Graph.vertex_count pattern
  && (let l = Array.to_list f in
      List.length (List.sort_uniq compare l) = List.length l)
  &&
  let ok = ref true in
  Graph.iter_edges
    (fun u v -> if not (Graph.has_edge host f.(u) f.(v)) then ok := false)
    pattern;
  !ok

let respects pattern host classes f =
  Array.length f = Graph.vertex_count pattern
  && Array.for_all2 (fun img cls -> Array.exists (fun v -> v = img) cls) f classes
  &&
  let ok = ref true in
  Graph.iter_edges
    (fun u v -> if not (Graph.has_edge host f.(u) f.(v)) then ok := false)
    pattern;
  !ok
