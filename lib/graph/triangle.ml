(* Triangle detection and counting (Sections 3 and 8).

   The detectors' relative performance is exactly what the "triangle
   conjecture" discussion in the paper is about:
   - [detect_naive]: scan all vertex triples, O(n^3) worst case.
   - [detect_edge_scan]: for each edge, word-parallel neighborhood
     intersection - the O(m^{3/2})-family enumeration baseline.
   - [detect_matmul]: Boolean A^2 against A, "O(d^omega)" with the
     word-packed matmul standing in for fast matrix multiplication.
   - [detect_heavy_light]: Alon-Yuster-Zwick split by a degree threshold
     Delta: edges with a light endpoint are checked by scanning that
     endpoint's neighborhood (O(m * Delta)); a triangle among heavy
     vertices (at most 2m/Delta of them) is found by matmul.  This is the
     O(m^{2 omega/(omega+1)}) algorithm cited for the triangle
     conjecture. *)

module Bitset = Lb_util.Bitset
module Matrix = Lb_util.Matrix
module Exec = Lb_util.Exec

let detect_naive g =
  let n = Graph.vertex_count g in
  let found = ref None in
  (try
     for u = 0 to n - 1 do
       for v = u + 1 to n - 1 do
         if Graph.has_edge g u v then
           for w = v + 1 to n - 1 do
             if Graph.has_edge g u w && Graph.has_edge g v w then begin
               found := Some (u, v, w);
               raise Exit
             end
           done
       done
     done
   with Exit -> ());
  !found

let detect_edge_scan g =
  let found = ref None in
  (try
     Graph.iter_edges
       (fun u v ->
         let common = Bitset.inter (Graph.neighbors g u) (Graph.neighbors g v) in
         match Bitset.choose common with
         | Some w ->
             found := Some (u, v, w);
             raise Exit
         | None -> ())
       g
   with Exit -> ());
  !found

let adjacency_bool g =
  let n = Graph.vertex_count g in
  let m = Matrix.Bool.create n n in
  Graph.iter_edges
    (fun u v ->
      Matrix.Bool.set m u v true;
      Matrix.Bool.set m v u true)
    g;
  m

let detect_matmul ?ctx g =
  let ex = Exec.resolve ?ctx () in
  let a = adjacency_bool g in
  let a2 = Matrix.Bool.mul ~ctx:ex a a in
  let n = Graph.vertex_count g in
  let found = ref None in
  (try
     for u = 0 to n - 1 do
       for v = u + 1 to n - 1 do
         if Matrix.Bool.get a u v && Matrix.Bool.get a2 u v then begin
           let common =
             Bitset.inter (Graph.neighbors g u) (Graph.neighbors g v)
           in
           (match Bitset.choose common with
           | Some w -> found := Some (u, v, w)
           | None -> assert false);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let detect_heavy_light ?delta ?ctx g =
  let ex = Exec.resolve ?ctx () in
  let n = Graph.vertex_count g in
  let m = Graph.edge_count g in
  let delta =
    match delta with
    | Some d -> max 1 d
    | None -> max 1 (int_of_float (sqrt (float_of_int (max m 1))))
  in
  let heavy = Array.init n (fun v -> Graph.degree g v > delta) in
  (* Light phase: any triangle with a light vertex has an edge incident to
     that light vertex; scanning the light endpoint's neighborhood over
     all edges finds it. *)
  let found = ref None in
  (try
     Graph.iter_edges
       (fun u v ->
         let u, v =
           if Graph.degree g u <= Graph.degree g v then (u, v) else (v, u)
         in
         if not heavy.(u) then
           Bitset.iter
             (fun w ->
               if w <> v && Graph.has_edge g v w then begin
                 found := Some (u, v, w);
                 raise Exit
               end)
             (Graph.neighbors g u))
       g
   with Exit -> ());
  match !found with
  | Some _ as r -> r
  | None ->
      (* Heavy phase: triangles entirely within heavy vertices. *)
      let hv =
        Array.of_list
          (List.filter (fun v -> heavy.(v)) (List.init n (fun i -> i)))
      in
      if Array.length hv < 3 then None
      else begin
        let sub, map = Graph.induced g hv in
        match detect_matmul ~ctx:ex sub with
        | Some (a, b, c) -> Some (map.(a), map.(b), map.(c))
        | None -> None
      end

(* Exact triangle count: C = popcount product A * A counts the common
   neighbors of every pair, so summing C(u,v) over edges {u,v} counts
   each triangle once per corner.  Entries of C are degrees at most, so
   (unlike the old trace(A^3) int-matrix route) nothing can overflow. *)
let count_matmul ?ctx g =
  let ex = Exec.resolve ?ctx () in
  let a = adjacency_bool g in
  let c = Matrix.Bool.mul_count ~ctx:ex a a in
  let total = ref 0 in
  Graph.iter_edges (fun u v -> total := !total + Matrix.Int.get c u v) g;
  !total / 3

(* Triangle count by edge scanning: each triangle {u<v<w} is counted at
   its edge (u,v) with the witness w > v. *)
let count_edge_scan g =
  let c = ref 0 in
  Graph.iter_edges
    (fun u v ->
      let common = Bitset.inter (Graph.neighbors g u) (Graph.neighbors g v) in
      Bitset.iter (fun w -> if w > v then incr c) common)
    g;
  !c
