(** Colorful subgraph isomorphism ColSub(H): every host vertex carries
    a pattern vertex as its color; a solution picks one host vertex per
    color so that pattern edges map to host edges.  The workload of
    Marx's ETH lower bound (no [n^{o(k/log k)}] algorithm even for
    max-degree-3 patterns), and - because the color classes partition
    the host - a clean binary CSP with primal graph [H] that a tree
    decomposition of [H] solves in [n^{tw(H)+1}] instead of the
    backtracking's [n^k].

    The CSP evaluation route lives in [Lb_reductions.Colsub_to_csp]
    ([lb_graph] sits below [lb_csp]); all routes return bit-identical
    verdicts and witnesses verified by {!verify}. *)

type t

(** [make ~pattern ~host ~colors] with [colors.(v)] the pattern vertex
    host vertex [v] may represent.  Raises [Invalid_argument] unless
    [colors] assigns every host vertex a color in
    [\[0, vertex_count pattern)]. *)
val make : pattern:Graph.t -> host:Graph.t -> colors:int array -> t

val pattern : t -> Graph.t
val host : t -> Graph.t
val colors : t -> int array

(** The color classes as a {!Subgraph_iso.partition}:
    [(classes t).(i)] lists the host vertices colored [i], ascending. *)
val classes : t -> int array array

(** Is [f] a colorful embedding - one host vertex per color, pattern
    edges to host edges? *)
val verify : t -> int array -> bool

(** Backtracking route: delegates to {!Subgraph_iso.find} on the color
    classes ([ctx] governance included, [subgraph_iso.nodes]
    metrics). *)
val find_backtracking : ?ctx:Lb_util.Exec.t -> t -> int array option

(** Count all colorful embeddings by exhaustive candidate-intersection
    backtracking: ~[n^k] nodes on dense hosts.  Ticks the budget and
    counts [colsub.bt.nodes] once per attempted extension. *)
val count_backtracking : ?ctx:Lb_util.Exec.t -> t -> int

(** A tree decomposition of the pattern via
    {!Treewidth.best_effort}. *)
val default_decomposition : t -> Tree_decomposition.t

(** Decomposition route: per-bag tables of locally consistent
    assignments, extension counts merged bottom-up over the rooted
    decomposition tree.  Work is one budget tick + one
    [colsub.dp.rows] per enumerated candidate row
    (~[sum_bags n^{|bag|}], i.e. [n^{tw(H)+1}] under the default
    decomposition) plus [colsub.dp.bags] per bag.  Raises
    [Invalid_argument] if [decomposition] is not a valid decomposition
    of the pattern. *)
val count_decomposed :
  ?ctx:Lb_util.Exec.t -> ?decomposition:Tree_decomposition.t -> t -> int

(** Witness form of {!count_decomposed}: a colorful embedding read off
    the DP tables top-down, or [None]. *)
val find_decomposed :
  ?ctx:Lb_util.Exec.t ->
  ?decomposition:Tree_decomposition.t ->
  t ->
  int array option
