(** Clique algorithms: the brute-force [n^k] search of Section 5, the
    Nesetril-Poljak matrix-multiplication route of Section 8, and
    Bron-Kerbosch for cross-checks. *)

(** Enumerate all [k]-cliques (as sorted arrays, reused between calls) by
    candidate-intersection backtracking.  Raise inside [f] to stop. *)
val iter_cliques : Graph.t -> int -> (int array -> unit) -> unit

(** First [k]-clique found, if any - the [O(n^k)] baseline. *)
val find_bruteforce : Graph.t -> int -> int array option

val count_cliques : Graph.t -> int -> int

(** All [t]-cliques as sorted arrays. *)
val list_cliques : Graph.t -> int -> int array list

(** Nesetril-Poljak: detect a [k]-clique ([k] a positive multiple of 3)
    as a triangle on the [k/3]-clique auxiliary graph, via word-packed
    Boolean matrix multiplication ([?pool]/[?budget]/[?metrics] reach
    the kernel).  Returns a witness clique. *)
val find_matmul :
  ?ctx:Lb_util.Exec.t -> Graph.t -> int -> int array option

(** Maximum clique (Bron-Kerbosch with pivoting). *)
val max_clique : Graph.t -> int array
