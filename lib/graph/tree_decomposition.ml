(* Tree decompositions (Definition 4.1 of the paper).

   A decomposition is a tree whose nodes carry bags of vertices.  Bags are
   sorted int arrays; the tree is an edge list over bag indices.
   [verify] checks the three defining conditions plus treeness and is run
   by the property tests against every decomposition the library
   produces. *)

module Bitset = Lb_util.Bitset
module Union_find = Lb_util.Union_find

type t = {
  bags : int array array; (* each sorted ascending *)
  tree : (int * int) list; (* edges over bag indices; must form a tree *)
}

let int_compare (a : int) (b : int) = if a < b then -1 else if a > b then 1 else 0

let make ~bags ~tree =
  let bags =
    Array.map
      (fun b ->
        let b = Array.copy b in
        Array.sort int_compare b;
        b)
      bags
  in
  { bags; tree }

let width t =
  Array.fold_left (fun acc b -> max acc (Array.length b - 1)) (-1) t.bags

let bag_count t = Array.length t.bags

let bags t = t.bags

let tree_edges t = t.tree

let tree_adjacency t =
  let nb = Array.length t.bags in
  let adj = Array.make nb [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    t.tree;
  adj

let bag_contains bag v =
  (* bags are sorted: binary search *)
  let lo = ref 0 and hi = ref (Array.length bag) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bag.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length bag && bag.(!lo) = v

type failure =
  | Not_a_tree
  | Vertex_uncovered of int
  | Edge_uncovered of int * int
  | Disconnected_occurrence of int

let pp_failure fmt = function
  | Not_a_tree -> Format.fprintf fmt "decomposition graph is not a tree"
  | Vertex_uncovered v -> Format.fprintf fmt "vertex %d is in no bag" v
  | Edge_uncovered (u, v) -> Format.fprintf fmt "edge (%d,%d) is in no bag" u v
  | Disconnected_occurrence v ->
      Format.fprintf fmt "bags containing %d are not connected in the tree" v

(* Check validity against graph [g]; [Ok ()] or [Error failure]. *)
let verify t g =
  let n = Graph.vertex_count g in
  let nb = Array.length t.bags in
  (* treeness *)
  let tree_ok =
    if nb = 0 then n = 0
    else begin
      let uf = Union_find.create nb in
      let acyclic = List.for_all (fun (a, b) -> Union_find.union uf a b) t.tree in
      acyclic && Union_find.components uf = 1
    end
  in
  if not tree_ok then Error Not_a_tree
  else begin
    (* vertex coverage *)
    let covered = Array.make n false in
    Array.iter (fun bag -> Array.iter (fun v -> covered.(v) <- true) bag) t.bags;
    let uncovered = ref None in
    for v = n - 1 downto 0 do
      if not covered.(v) then uncovered := Some v
    done;
    match !uncovered with
    | Some v -> Error (Vertex_uncovered v)
    | None -> (
        (* edge coverage *)
        let edge_bad = ref None in
        Graph.iter_edges
          (fun u v ->
            if !edge_bad = None then begin
              let found = ref false in
              Array.iter
                (fun bag ->
                  if (not !found) && bag_contains bag u && bag_contains bag v
                  then found := true)
                t.bags;
              if not !found then edge_bad := Some (u, v)
            end)
          g;
        match !edge_bad with
        | Some (u, v) -> Error (Edge_uncovered (u, v))
        | None ->
            (* connectivity of occurrences *)
            let adj = tree_adjacency t in
            let bad = ref None in
            for v = 0 to n - 1 do
              if !bad = None then begin
                let occ =
                  Array.to_list
                    (Array.mapi (fun i bag -> (i, bag_contains bag v)) t.bags)
                  |> List.filter snd |> List.map fst
                in
                match occ with
                | [] -> ()
                | start :: _ ->
                    let inocc = Array.make nb false in
                    List.iter (fun i -> inocc.(i) <- true) occ;
                    let seen = Array.make nb false in
                    let stack = ref [ start ] in
                    seen.(start) <- true;
                    let count = ref 0 in
                    while !stack <> [] do
                      match !stack with
                      | [] -> ()
                      | i :: rest ->
                          stack := rest;
                          incr count;
                          List.iter
                            (fun j ->
                              if inocc.(j) && not seen.(j) then begin
                                seen.(j) <- true;
                                stack := j :: !stack
                              end)
                            adj.(i)
                    done;
                    if !count <> List.length occ then bad := Some v
              end
            done;
            (match !bad with
            | Some v -> Error (Disconnected_occurrence v)
            | None -> Ok ()))
  end

(* Build a tree decomposition from an elimination order: eliminate
   vertices in order, connecting the current neighborhood of each
   eliminated vertex into a clique (the fill-in).  The bag of vertex v is
   {v} plus its neighbors at elimination time; the parent of v's bag is
   the bag of the first vertex of that neighborhood eliminated after v.
   Width = max bag size - 1.  This is the classic construction used by
   both heuristic and exact treewidth algorithms. *)
let of_elimination_order g order =
  let n = Graph.vertex_count g in
  if Array.length order <> n then
    invalid_arg "Tree_decomposition.of_elimination_order";
  if n = 0 then { bags = [| [||] |]; tree = [] }
  else begin
    let position = Array.make n 0 in
    Array.iteri (fun i v -> position.(v) <- i) order;
    (* adjacency as mutable bitsets; fill in as we eliminate *)
    let adj = Array.init n (fun v -> Bitset.copy (Graph.neighbors g v)) in
    let bags = Array.make n [||] in
    let parent = Array.make n (-1) in
    for i = 0 to n - 1 do
      let v = order.(i) in
      let later =
        Bitset.fold
          (fun u acc -> if position.(u) > i then u :: acc else acc)
          adj.(v) []
      in
      bags.(i) <- Array.of_list (List.sort int_compare (v :: later));
      (* fill-in among later neighbors *)
      let later_arr = Array.of_list later in
      let k = Array.length later_arr in
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          let u = later_arr.(a) and w = later_arr.(b) in
          Bitset.add adj.(u) w;
          Bitset.add adj.(w) u
        done
      done;
      (* parent bag: earliest-eliminated later neighbor *)
      (match later with
      | [] -> ()
      | _ ->
          let next =
            List.fold_left
              (fun best u -> if position.(u) < position.(best) then u else best)
              (List.hd later) later
          in
          parent.(i) <- position.(next))
    done;
    let tree = ref [] in
    for i = 0 to n - 1 do
      if parent.(i) >= 0 then tree := (i, parent.(i)) :: !tree
      else if i < n - 1 then
        (* roots of separate components: chain them to keep a single tree *)
        tree := (i, n - 1) :: !tree
    done;
    { bags; tree = !tree }
  end

(* Root the decomposition tree at bag 0 and return (parent, children,
   preorder) arrays for dynamic programming. *)
let rooted t =
  let nb = Array.length t.bags in
  let adj = tree_adjacency t in
  let parent = Array.make nb (-1) in
  let order = Array.make nb 0 in
  let seen = Array.make nb false in
  let idx = ref 0 in
  let stack = ref [ 0 ] in
  if nb > 0 then seen.(0) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        order.(!idx) <- i;
        incr idx;
        List.iter
          (fun j ->
            if not seen.(j) then begin
              seen.(j) <- true;
              parent.(j) <- i;
              stack := j :: !stack
            end)
          adj.(i)
  done;
  let children = Array.make nb [] in
  for i = 0 to nb - 1 do
    if parent.(i) >= 0 then children.(parent.(i)) <- i :: children.(parent.(i))
  done;
  (parent, children, order)
