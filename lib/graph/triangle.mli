(** Triangle detection and counting - the algorithmic content of the
    triangle conjecture discussion (Sections 3 and 8).  All detectors
    return a witness [(u, v, w)]. *)

(** Scan all vertex triples: [O(n^3)]. *)
val detect_naive : Graph.t -> (int * int * int) option

(** Per-edge word-parallel neighborhood intersection. *)
val detect_edge_scan : Graph.t -> (int * int * int) option

(** Adjacency matrix of the graph as a Boolean matrix. *)
val adjacency_bool : Graph.t -> Lb_util.Matrix.Bool.t

(** Boolean [A^2] against [A]: the "[O(d^omega)]" dense detector.  The
    [ctx] resources ({!Lb_util.Exec.t}) are forwarded to the matmul
    kernel. *)
val detect_matmul :
  ?ctx:Lb_util.Exec.t -> Graph.t -> (int * int * int) option

(** Alon-Yuster-Zwick heavy/light split: light edges by neighborhood
    scan, heavy core by matmul - the [O(m^{2w/(w+1)})] algorithm.
    [delta] overrides the degree threshold (default [sqrt m]); the
    execution resources apply to the heavy phase. *)
val detect_heavy_light :
  ?delta:int -> ?ctx:Lb_util.Exec.t -> Graph.t -> (int * int * int) option

(** Exact count via the popcount product: sums common-neighbor counts
    over edges, so every entry is a degree and nothing overflows
    (unlike the former [trace(A^3)] int route — see
    {!Lb_util.Matrix.Int.mul}). *)
val count_matmul : ?ctx:Lb_util.Exec.t -> Graph.t -> int

(** Exact count by edge scanning. *)
val count_edge_scan : Graph.t -> int
