(* Simple undirected graphs on vertex set [0, n).

   Adjacency is stored both as per-vertex bitsets (constant-time adjacency
   tests, word-parallel neighborhood intersections — the workhorse of the
   clique and triangle algorithms) and as a duplicate-free edge list
   (cheap iteration in O(m)). *)

module Bitset = Lb_util.Bitset

type t = {
  n : int;
  adj : Bitset.t array;
  mutable edges : (int * int) list; (* u < v, most recent first *)
  mutable m : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create";
  { n; adj = Array.init n (fun _ -> Bitset.create n); edges = []; m = 0 }

let vertex_count t = t.n

let edge_count t = t.m

let has_edge t u v = u <> v && Bitset.mem t.adj.(u) v

let add_edge t u v =
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if not (has_edge t u v) then begin
    Bitset.add t.adj.(u) v;
    Bitset.add t.adj.(v) u;
    t.edges <- (min u v, max u v) :: t.edges;
    t.m <- t.m + 1
  end

let neighbors t v = t.adj.(v)

let degree t v = Bitset.cardinal t.adj.(v)

let edges t = t.edges

let iter_edges f t = List.iter (fun (u, v) -> f u v) t.edges

let of_edges n edge_list =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edge_list;
  g

let copy t =
  { n = t.n; adj = Array.map Bitset.copy t.adj; edges = t.edges; m = t.m }

let complement t =
  let g = create t.n in
  for u = 0 to t.n - 1 do
    for v = u + 1 to t.n - 1 do
      if not (has_edge t u v) then add_edge g u v
    done
  done;
  g

(* Induced subgraph on [vs]; returns the subgraph and the vertex map
   (new index -> original vertex). *)
let induced t vs =
  let vs = Array.copy vs in
  Array.sort (fun (a : int) b -> if a < b then -1 else if a > b then 1 else 0) vs;
  let k = Array.length vs in
  let index = Hashtbl.create (2 * k) in
  Array.iteri (fun i v -> Hashtbl.replace index v i) vs;
  let g = create k in
  Array.iteri
    (fun i v ->
      Bitset.iter
        (fun w ->
          match Hashtbl.find_opt index w with
          | Some j when j > i -> add_edge g i j
          | _ -> ())
        t.adj.(v))
    vs;
  (g, vs)

(* Disjoint union: vertices of [b] are shifted by [a.n]. *)
let disjoint_union a b =
  let g = create (a.n + b.n) in
  iter_edges (fun u v -> add_edge g u v) a;
  iter_edges (fun u v -> add_edge g (u + a.n) (v + a.n)) b;
  g

let is_clique t vs =
  let k = Array.length vs in
  let ok = ref true in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if not (has_edge t vs.(i) vs.(j)) then ok := false
    done
  done;
  !ok

(* Closed neighborhood N[v] as a fresh bitset. *)
let closed_neighborhood t v =
  let s = Bitset.copy t.adj.(v) in
  Bitset.add s v;
  s

let connected_components t =
  let comp = Array.make t.n (-1) in
  let ncomp = ref 0 in
  for s = 0 to t.n - 1 do
    if comp.(s) < 0 then begin
      let c = !ncomp in
      incr ncomp;
      let queue = Queue.create () in
      Queue.add s queue;
      comp.(s) <- c;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Bitset.iter
          (fun v ->
            if comp.(v) < 0 then begin
              comp.(v) <- c;
              Queue.add v queue
            end)
          t.adj.(u)
      done
    end
  done;
  let members = Array.make !ncomp [] in
  for v = t.n - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  Array.map Array.of_list members

let is_connected t = t.n <= 1 || Array.length (connected_components t) = 1

(* Is the graph a simple path? (connected, two degree-1 endpoints, rest
   degree 2; single vertices count as paths) *)
let is_path t =
  if t.n = 0 then false
  else if t.n = 1 then true
  else
    is_connected t
    &&
    let d1 = ref 0 and ok = ref true in
    for v = 0 to t.n - 1 do
      match degree t v with
      | 1 -> incr d1
      | 2 -> ()
      | _ -> ok := false
    done;
    !ok && !d1 = 2

let max_degree t =
  let d = ref 0 in
  for v = 0 to t.n - 1 do
    d := max !d (degree t v)
  done;
  !d

let pp fmt t =
  Format.fprintf fmt "graph(n=%d, m=%d)" t.n t.m

(* Graphviz DOT export, for eyeballing gadget constructions. *)
let to_dot ?(name = "g") ?labels t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  (match labels with
  | Some f ->
      for v = 0 to t.n - 1 do
        Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" v (f v))
      done
  | None -> ());
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    (List.rev t.edges);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
