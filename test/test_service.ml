(* Tests for the query service (lib/service).

   - Planner differential: for random catalogs and queries, the answer
     produced through the server (planner-chosen engine, and every
     feasible forced engine) must equal the naive hash-join oracle
     (Query.answer).
   - Protocol fuzz: random typed requests encode -> decode -> encode
     byte-identically, and decode is a left inverse of encode.
   - Admission control: a window beyond max_pending is shed with
     "overloaded" replies - the queue never grows past the bound.
   - The scripted acceptance session: plans match the structure
     (Yannakakis on the acyclic query, a WCOJ engine on the triangle),
     repeats hit the result cache, a tick-bounded hard query times out
     with partial counters, and mutations invalidate the cache. *)

module Json = Lb_service.Json
module Protocol = Lb_service.Protocol
module Planner = Lb_service.Planner
module Catalog = Lb_service.Catalog
module Server = Lb_service.Server
module Client = Lb_service.Client
module Worker = Lb_service.Worker
module Q = Lb_relalg.Query
module R = Lb_relalg.Relation
module Db = Lb_relalg.Database
module Prng = Lb_util.Prng
module Metrics = Lb_util.Metrics

let check = Alcotest.check

(* --- response plumbing --- *)

let field name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_string json)

let status json =
  match field "status" json with
  | Json.String s -> s
  | _ -> Alcotest.fail "non-string status"

let expect_ok ctxt json =
  if status json <> "ok" then
    Alcotest.failf "%s: expected ok, got %s" ctxt (Json.to_string json)

let int_of = function Json.Int i -> i | _ -> Alcotest.fail "expected int"

let rows_of_response json =
  match field "rows" json with
  | Json.List rows ->
      List.map
        (function
          | Json.List cells -> Array.of_list (List.map int_of cells)
          | _ -> Alcotest.fail "row is not an array")
        rows
  | _ -> Alcotest.fail "rows is not an array"

let engine_of_response json =
  match Json.member "engine" (field "plan" json) with
  | Some (Json.String e) -> e
  | _ -> Alcotest.fail "plan lacks engine"

let cached_of_response json =
  match field "cached" json with
  | Json.Bool b -> b
  | _ -> Alcotest.fail "cached is not a bool"

(* Canonical form of the oracle answer: the server's column order
   (attributes in order of first appearance) and sorted rows. *)
let canonical_rows (q : Q.t) (rel : R.t) =
  let projected = R.project rel (Q.attributes q) in
  let rows = Array.copy (R.tuples projected) in
  Array.sort compare rows;
  Array.to_list rows

(* --- random instances (same family as test_join_engine) --- *)

let var_pool = [| "a"; "b"; "c"; "d" |]

let random_query rng =
  let nvars = 2 + Prng.int rng 3 in
  let natoms = 1 + Prng.int rng 3 in
  List.init natoms (fun i ->
      let arity = 1 + Prng.int rng 3 in
      let vs = Array.init arity (fun _ -> var_pool.(Prng.int rng nvars)) in
      Q.atom (Printf.sprintf "R%d" i) vs)

let random_db rng (q : Q.t) =
  let dom = 2 + Prng.int rng 4 in
  Db.of_list
    (List.map
       (fun (a : Q.atom) ->
         let arity = Array.length a.Q.attrs in
         let nrows =
           if Prng.bernoulli rng 0.05 then 0 else 1 + Prng.int rng 12
         in
         let tuples =
           List.init nrows (fun _ ->
               Array.init arity (fun _ -> Prng.int rng dom))
         in
         let attrs = Array.init arity (Printf.sprintf "c%d") in
         (a.Q.rel, R.make attrs tuples))
       q)

let server_with_db db =
  let srv = Server.create () in
  List.iter
    (fun name ->
      let rel = Db.find db name in
      match
        Catalog.load (Server.catalog srv) ~name ~attrs:(R.attrs rel)
          (Array.to_list (R.tuples rel))
      with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "catalog load %s: %s" name msg)
    (Db.names db);
  srv

let query_req ?engine text =
  Protocol.Query
    { text; opts = { Protocol.default_opts with engine } }

(* --- the differential property --- *)

let test_planner_differential () =
  for seed = 1 to 60 do
    let rng = Prng.create (97 * seed) in
    let q = random_query rng in
    let db = random_db rng q in
    let srv = server_with_db db in
    let expected = canonical_rows q (Q.answer db q) in
    let engines =
      None
      :: List.filter_map
           (fun e ->
             if
               e = Planner.Yannakakis
               && not (Lb_relalg.Yannakakis.is_acyclic q)
             then None
             else Some (Some e))
           Planner.all_engines
    in
    List.iter
      (fun engine ->
        let reply = Server.handle srv (query_req ?engine (Q.to_string q)) in
        let ctxt =
          Printf.sprintf "seed %d, query %s, engine %s" seed (Q.to_string q)
            (match engine with
            | None -> "auto"
            | Some e -> Planner.engine_name e)
        in
        expect_ok ctxt reply;
        if rows_of_response reply <> expected then
          Alcotest.failf "%s: answer differs from hash-join oracle" ctxt;
        check Alcotest.int (ctxt ^ " count") (List.length expected)
          (int_of (field "count" reply)))
      engines
  done

(* --- protocol round-trip fuzz --- *)

let name_pool =
  [| "R"; "S"; "edge_2"; "we\"ird"; "back\\slash"; "tab\there"; "nl\nline";
     "ctrl\001"; "caf\xc3\xa9" |]

let random_string rng = name_pool.(Prng.int rng (Array.length name_pool))

let random_tuples rng =
  let rows = Prng.int rng 4 in
  let width = 1 + Prng.int rng 3 in
  List.init rows (fun _ ->
      List.init width (fun _ -> Prng.int rng 20 - 5))

let random_opts rng =
  let opt f = if Prng.bool rng then Some (f ()) else None in
  {
    Protocol.engine =
      (if Prng.bool rng then None
       else
         Some
           (List.nth Planner.all_engines
              (Prng.int rng (List.length Planner.all_engines))));
    count_only = Prng.bool rng;
    limit = opt (fun () -> Prng.int rng 1000);
    timeout_ms = opt (fun () -> 1 + Prng.int rng 10_000);
    max_ticks = opt (fun () -> 1 + Prng.int rng 1_000_000);
  }

let random_request rng =
  match Prng.int rng 10 with
  | 0 ->
      Protocol.Load
        {
          name = random_string rng;
          attrs = List.init (1 + Prng.int rng 3) (fun _ -> random_string rng);
          tuples = random_tuples rng;
        }
  | 1 -> Protocol.Insert { name = random_string rng; tuples = random_tuples rng }
  | 2 -> Protocol.Delete { name = random_string rng; tuples = random_tuples rng }
  | 3 -> Protocol.Drop { name = random_string rng }
  | 4 -> Protocol.Query { text = random_string rng; opts = random_opts rng }
  | 5 -> Protocol.Explain { text = random_string rng }
  | 6 -> Protocol.Stats
  | 7 -> Protocol.Checkpoint
  | 8 -> Protocol.Ping
  | _ -> Protocol.Shutdown

let test_protocol_roundtrip () =
  for seed = 1 to 500 do
    let rng = Prng.create (11 * seed) in
    let req = random_request rng in
    let line = Protocol.request_to_string req in
    match Protocol.request_of_string line with
    | Error msg -> Alcotest.failf "seed %d: decode failed: %s (%s)" seed msg line
    | Ok req' ->
        if req' <> req then
          Alcotest.failf "seed %d: decode is not a left inverse (%s)" seed line;
        let line' = Protocol.request_to_string req' in
        check Alcotest.string
          (Printf.sprintf "seed %d: byte-identical re-encode" seed)
          line line'
  done

(* JSON values that did not originate from our encoder also round-trip
   through parse/print canonically. *)
let test_json_canonical () =
  List.iter
    (fun (input, canonical) ->
      let v = Json.parse input in
      check Alcotest.string input canonical (Json.to_string v);
      check Alcotest.string (input ^ " (idempotent)") canonical
        (Json.to_string (Json.parse (Json.to_string v))))
    [
      ({| { "a" : [ 1, 2.5, -3 ] , "b" : "xA\n" } |},
       {|{"a":[1,2.5,-3],"b":"xA\n"}|});
      ("[true,false,null]", "[true,false,null]");
      ({|"café"|}, "\"caf\xc3\xa9\"");
      ("1e3", "1000.0");
      ("{}", "{}");
    ]

(* --- admission control --- *)

let test_overload_rejection () =
  let config = { Server.default_config with max_pending = 4 } in
  let srv = Server.create ~config () in
  (match
     Catalog.load (Server.catalog srv) ~name:"R" ~attrs:[| "a"; "b" |]
       [ [| 1; 2 |]; [| 2; 3 |] ]
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let reqs = List.init 20 (fun _ -> query_req "R(a,b)") in
  let replies = Server.submit_window srv reqs in
  check Alcotest.int "one reply per request" 20 (List.length replies);
  List.iteri
    (fun i reply ->
      let expected = if i < 4 then "ok" else "overloaded" in
      check Alcotest.string (Printf.sprintf "reply %d" i) expected
        (status reply);
      if i >= 4 then begin
        check Alcotest.int "max_pending echoed" 4
          (int_of (field "max_pending" reply))
      end)
    replies;
  check Alcotest.(option int) "shed count" (Some 16)
    (Metrics.find_counter (Server.metrics srv) "serve.overloaded")

(* --- the scripted acceptance session --- *)

let handle_ok srv ctxt req =
  let reply = Server.handle srv req in
  expect_ok ctxt reply;
  reply

let load_req name attrs tuples = Protocol.Load { name; attrs; tuples }

let test_scripted_session () =
  let srv = Server.create () in
  let handle = Server.handle srv in
  (* complete directed graph on 5 vertices *)
  let edges =
    List.concat_map
      (fun x -> List.filter_map (fun y -> if x = y then None else Some [ x; y ])
          [ 0; 1; 2; 3; 4 ])
      [ 0; 1; 2; 3; 4 ]
  in
  ignore (handle_ok srv "load E" (load_req "E" [ "u"; "v" ] edges));
  ignore
    (handle_ok srv "load P1" (load_req "P1" [ "a"; "b" ] [ [ 1; 2 ]; [ 2; 2 ] ]));
  ignore
    (handle_ok srv "load P2" (load_req "P2" [ "b"; "c" ] [ [ 2; 7 ]; [ 9; 9 ] ]));

  let triangle = "E(x,y), E(y,z), E(z,x)" in
  let path = "P1(a,b), P2(b,c)" in

  (* 1. the planner picks a WCOJ engine for the triangle... *)
  let r1 = handle_ok srv "triangle" (query_req triangle) in
  let wcoj = engine_of_response r1 in
  if wcoj <> "leapfrog" && wcoj <> "generic_join" then
    Alcotest.failf "triangle should run on a WCOJ engine, got %s" wcoj;
  check Alcotest.bool "first run is uncached" false (cached_of_response r1);
  (* K5 has 5*4*3 ordered triangles *)
  check Alcotest.int "triangle count" 60 (int_of (field "count" r1));

  (* ...and Yannakakis for the acyclic query *)
  let r2 = handle_ok srv "path" (query_req path) in
  check Alcotest.string "acyclic engine" "yannakakis" (engine_of_response r2);
  check Alcotest.int "path count" 2 (int_of (field "count" r2));

  (* 2. the second identical query is answered from the result cache *)
  let r3 = handle_ok srv "triangle again" (query_req triangle) in
  check Alcotest.bool "second run cached" true (cached_of_response r3);
  check Alcotest.string "cached rows identical"
    (Json.to_string (field "rows" r1))
    (Json.to_string (field "rows" r3));
  (match
     Metrics.find_counter (Server.metrics srv) "serve.cache.result.hits"
   with
  | Some n when n >= 1 -> ()
  | other ->
      Alcotest.failf "expected result-cache hits >= 1, got %s"
        (match other with None -> "none" | Some n -> string_of_int n));

  (* 3. a deadline-bounded hard query reports a structured timeout with
        partial counters *)
  let hard =
    Protocol.Query
      {
        text = triangle ^ ", E(x,w), E(w,y)";
        opts = { Protocol.default_opts with max_ticks = Some 2 };
      }
  in
  let r4 = handle hard in
  check Alcotest.string "timeout status" "timeout" (status r4);
  check Alcotest.string "timeout reason" "ticks"
    (match field "reason" r4 with Json.String s -> s | _ -> "?");
  check Alcotest.int "ticks consumed" 2 (int_of (field "ticks" r4));
  (match field "partial" r4 with
  | Json.Obj fields ->
      if fields = [] then Alcotest.fail "partial counters empty"
  | _ -> Alcotest.fail "partial is not an object");
  (match Metrics.find_counter (Server.metrics srv) "serve.timeouts" with
  | Some 1 -> ()
  | _ -> Alcotest.fail "serve.timeouts not incremented");

  (* 4. a write to P2 is IVM-maintained into the cached path answer -
        still served as cached, with the updated (recompute-identical)
        rows - while the triangle's cache entry (over E only) is
        untouched *)
  ignore
    (handle_ok srv "insert"
       (Protocol.Insert { name = "P2"; tuples = [ [ 2; 8 ] ] }));
  let r5 = handle_ok srv "path after insert" (query_req path) in
  check Alcotest.bool "post-mutation run maintained in cache" true
    (cached_of_response r5);
  check Alcotest.int "post-mutation count" 4 (int_of (field "count" r5));
  (match
     Metrics.find_counter (Server.metrics srv) "serve.ivm.maintained"
   with
  | Some n when n >= 1 -> ()
  | other ->
      Alcotest.failf "expected serve.ivm.maintained >= 1, got %s"
        (match other with None -> "none" | Some n -> string_of_int n));
  let r6 = handle_ok srv "triangle after insert" (query_req triangle) in
  check Alcotest.bool "triangle entry untouched by P2 write" true
    (cached_of_response r6);
  check Alcotest.string "triangle rows unchanged"
    (Json.to_string (field "rows" r1))
    (Json.to_string (field "rows" r6));

  (* 5. drop, then querying the dropped relation is an error *)
  ignore (handle_ok srv "drop" (Protocol.Drop { name = "P1" }));
  let r7 = handle (query_req path) in
  check Alcotest.string "query after drop fails" "error" (status r7)

(* --- the pipe front end: windows, shedding, in-order replies --- *)

let test_serve_pipe_session () =
  let lines =
    [
      {|{"op":"load","name":"R","attrs":["a","b"],"tuples":[[1,2],[2,3]]}|};
      {|{"op":"query","q":"R(a,b)"}|};
      {|{"op":"query","q":"R(a,b)"}|};
      "this is not json";
      {|{"op":"shutdown"}|};
    ]
  in
  let srv = Server.create () in
  let replies = Client.run_script_lines srv lines in
  check Alcotest.int "one reply per line" (List.length lines)
    (List.length replies);
  check Alcotest.bool "shutdown reached" true (Server.shutdown_requested srv);
  let statuses =
    List.map (fun line -> status (Json.parse line)) replies
  in
  check
    Alcotest.(list string)
    "statuses in order"
    [ "ok"; "ok"; "ok"; "error"; "ok" ]
    statuses;
  (* both queries were in one window: the duplicate collapses onto one
     execution and reports as cached *)
  let q1 = Json.parse (List.nth replies 1)
  and q2 = Json.parse (List.nth replies 2) in
  check Alcotest.bool "first uncached" false (cached_of_response q1);
  check Alcotest.bool "duplicate collapsed to cached" true
    (cached_of_response q2);
  check Alcotest.string "identical rows"
    (Json.to_string (field "rows" q1))
    (Json.to_string (field "rows" q2))

(* --- protocol v1: version stamping, hello, unknown-field tolerance --- *)

let k5_edges =
  List.concat_map
    (fun x ->
      List.filter_map (fun y -> if x = y then None else Some [ x; y ])
        [ 0; 1; 2; 3; 4 ])
    [ 0; 1; 2; 3; 4 ]

let test_protocol_versioning () =
  let srv = Server.create () in
  ignore (handle_ok srv "load" (load_req "R" [ "a"; "b" ] [ [ 1; 2 ] ]));
  (* every response - success, error, hello, stats, ping - carries "v":1 *)
  List.iter
    (fun (ctxt, req) ->
      let reply = Server.handle srv req in
      match field "v" reply with
      | Json.Int 1 -> ()
      | other ->
          Alcotest.failf "%s: bad protocol version %s" ctxt
            (Json.to_string other))
    [
      ("query", query_req "R(a,b)");
      ("error", query_req "NoSuch(a)");
      ("hello", Protocol.Hello);
      ("stats", Protocol.Stats);
      ("ping", Protocol.Ping);
    ];
  (* requests may pin "v":1 or "v":2; beyond max_version is a decode
     error *)
  (match Protocol.request_of_string {|{"op":"ping","v":1}|} with
  | Ok Protocol.Ping -> ()
  | Ok _ | Error _ -> Alcotest.fail "a v:1 request should decode");
  (match Protocol.request_of_string {|{"op":"ping","v":2}|} with
  | Ok Protocol.Ping -> ()
  | Ok _ | Error _ -> Alcotest.fail "a v:2 request should decode");
  (match Protocol.request_of_string {|{"op":"ping","v":3}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a v:3 request should be rejected");
  (* a server without worker support rejects v2 requests with a
     structured error, not a parse failure *)
  let reply = Json.parse (Server.handle_line srv {|{"op":"ping","v":2}|}) in
  check Alcotest.string "v2 on a v1 server rejected" "error" (status reply);
  (match field "code" reply with
  | Json.String "unsupported_version" -> ()
  | other ->
      Alcotest.failf "expected code unsupported_version, got %s"
        (Json.to_string other));
  check Alcotest.int "advertised maximum" 1 (int_of (field "max_version" reply));
  check
    Alcotest.(option int)
    "rejection counted" (Some 1)
    (Metrics.find_counter (Server.metrics srv) "serve.protocol.rejected_version");
  (* the v2 ops themselves need "v":2 even at the decode layer *)
  (match Protocol.request_of_string {|{"op":"sync","version":1,"shards":2}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a v2-only op without v:2 should be rejected");
  (* a v2-enabled worker accepts the same line a plain server rejects *)
  let wrk = Worker.create () in
  let reply = Json.parse (Server.handle_line wrk {|{"op":"ping","v":2}|}) in
  expect_ok "v2 ping on a worker" reply

let test_hello_capabilities () =
  let config = { Server.default_config with shards = 4 } in
  let srv = Server.create ~config () in
  let reply = handle_ok srv "hello" Protocol.Hello in
  let caps = field "capabilities" reply in
  check Alcotest.int "shards advertised" 4 (int_of (field "shards" caps));
  (match field "batch" caps with
  | Json.Bool true -> ()
  | _ -> Alcotest.fail "batch capability missing");
  (match field "compile" caps with
  | Json.Bool true -> ()
  | _ -> Alcotest.fail "compile capability missing");
  (match field "ivm" caps with
  | Json.Bool true -> ()
  | _ -> Alcotest.fail "ivm capability missing");
  (match field "durable" caps with
  | Json.Bool false -> ()
  | _ -> Alcotest.fail "durable capability should be false without data-dir");
  match field "engines" caps with
  | Json.List engines ->
      let names =
        List.map (function Json.String s -> s | _ -> "?") engines
      in
      List.iter
        (fun e ->
          if not (List.mem (Planner.engine_name e) names) then
            Alcotest.failf "engine %s not advertised" (Planner.engine_name e))
        Planner.all_engines
  | _ -> Alcotest.fail "engines is not a list"

let test_unknown_field_tolerance () =
  (* the extended decoder reports the names it skipped *)
  (match
     Protocol.request_of_string_ext
       {|{"op":"query","q":"R(a,b)","shiny":true,"future":[1]}|}
   with
  | Ok (Protocol.Query _, ignored, _) ->
      check
        Alcotest.(list string)
        "ignored names" [ "future"; "shiny" ]
        (List.sort compare ignored)
  | Ok _ -> Alcotest.fail "decoded to the wrong request"
  | Error msg -> Alcotest.fail msg);
  (* the server answers anyway and counts the tolerated fields *)
  let srv = Server.create () in
  ignore (handle_ok srv "load" (load_req "R" [ "a"; "b" ] [ [ 1; 2 ] ]));
  let reply =
    Json.parse
      (Server.handle_line srv {|{"op":"query","q":"R(a,b)","x_future":0}|})
  in
  expect_ok "unknown field still answered" reply;
  check
    Alcotest.(option int)
    "tolerance counted" (Some 1)
    (Metrics.find_counter (Server.metrics srv) "serve.protocol.ignored_fields")

(* Fuzz: splicing a junk field into any well-formed request must not
   change what it decodes to, and the junk is reported by name. *)
let test_unknown_field_fuzz () =
  for seed = 1 to 300 do
    let rng = Prng.create (13 * seed) in
    let req = random_request rng in
    let line = Protocol.request_to_string req in
    let spliced =
      Printf.sprintf {|{"zz_fuzz":%d,%s|} seed
        (String.sub line 1 (String.length line - 1))
    in
    match Protocol.request_of_string_ext spliced with
    | Error msg -> Alcotest.failf "seed %d: %s (%s)" seed msg spliced
    | Ok (req', ignored, _) ->
        if req' <> req then
          Alcotest.failf "seed %d: junk field changed the decode (%s)" seed
            spliced;
        check
          Alcotest.(list string)
          (Printf.sprintf "seed %d: junk reported" seed)
          [ "zz_fuzz" ] ignored
  done

(* --- batch scheduling: shared executions, isolated deadlines --- *)

let triangle_text = "E(x,y), E(y,z), E(z,x)"

let test_batch_shares_trie_build () =
  let srv = Server.create () in
  ignore (handle_ok srv "load E" (load_req "E" [ "u"; "v" ] k5_edges));
  let req = query_req ~engine:Planner.Generic_join triangle_text in
  let replies = Server.submit_window srv (List.init 8 (fun _ -> req)) in
  check Alcotest.int "8 replies" 8 (List.length replies);
  let rows0 = ref "" in
  List.iteri
    (fun i reply ->
      expect_ok (Printf.sprintf "reply %d" i) reply;
      check Alcotest.int (Printf.sprintf "count %d" i) 60
        (int_of (field "count" reply));
      let rows = Json.to_string (field "rows" reply) in
      if i = 0 then rows0 := rows
      else check Alcotest.string (Printf.sprintf "rows %d identical" i) !rows0
          rows)
    replies;
  let counter name = Metrics.find_counter (Server.metrics srv) name in
  (match counter "generic_join.trie_builds" with
  | Some n when n <= 2 -> ()
  | other ->
      Alcotest.failf "batch of 8 identical queries built %s tries, want <= 2"
        (match other with None -> "no" | Some n -> string_of_int n));
  check Alcotest.(option int) "one execution group" (Some 1)
    (counter "serve.batch.groups");
  check Alcotest.(option int) "seven members shared it" (Some 7)
    (counter "serve.batch.shared")

let test_batch_timeout_isolation () =
  (* one member of the window carries a tiny tick budget and times out;
     the budgeted request never joins a batch group, so the other
     members of the window still get full answers *)
  let load_line =
    Protocol.request_to_string
      (Protocol.Load { name = "E"; attrs = [ "u"; "v" ]; tuples = k5_edges })
  in
  let hard =
    Printf.sprintf {|{"op":"query","q":"%s, E(x,w), E(w,y)","max_ticks":2}|}
      triangle_text
  in
  let plain = Printf.sprintf {|{"op":"query","q":"%s"}|} triangle_text in
  let lines = [ load_line; hard; plain; plain; {|{"op":"shutdown"}|} ] in
  let srv = Server.create () in
  let replies = List.map Json.parse (Client.run_script_lines srv lines) in
  check
    Alcotest.(list string)
    "statuses in order"
    [ "ok"; "timeout"; "ok"; "ok"; "ok" ]
    (List.map status replies);
  let q1 = List.nth replies 2 and q2 = List.nth replies 3 in
  check Alcotest.int "full answer beside the timeout" 60
    (int_of (field "count" q1));
  check Alcotest.string "collapsed members agree"
    (Json.to_string (field "rows" q1))
    (Json.to_string (field "rows" q2));
  (* the two plain queries formed one group; the budgeted one ran alone *)
  match Metrics.find_counter (Server.metrics srv) "serve.batch.shared" with
  | Some n when n >= 1 -> ()
  | _ -> Alcotest.fail "plain duplicates did not share an execution"

(* --- sharded storage mode: same answers, same work counters --- *)

let test_sharded_server_bit_identical () =
  let rng = Prng.create 2024 in
  let edges = List.init 60 (fun _ -> [ Prng.int rng 12; Prng.int rng 12 ]) in
  List.iter
    (fun (engine, work_counter) ->
      let plain = Server.create () in
      let sharded =
        Server.create ~config:{ Server.default_config with shards = 3 } ()
      in
      List.iter
        (fun srv ->
          ignore (handle_ok srv "load E" (load_req "E" [ "u"; "v" ] edges)))
        [ plain; sharded ];
      let r0 = handle_ok plain "unsharded" (query_req ~engine triangle_text) in
      let r1 = handle_ok sharded "sharded" (query_req ~engine triangle_text) in
      let ctxt = Planner.engine_name engine in
      check Alcotest.string (ctxt ^ ": identical rows")
        (Json.to_string (field "rows" r0))
        (Json.to_string (field "rows" r1));
      check Alcotest.int (ctxt ^ ": identical count")
        (int_of (field "count" r0))
        (int_of (field "count" r1));
      check
        Alcotest.(option int)
        (ctxt ^ ": " ^ work_counter ^ " bit-identical")
        (Metrics.find_counter (Server.metrics plain) work_counter)
        (Metrics.find_counter (Server.metrics sharded) work_counter);
      match
        Metrics.find_counter (Server.metrics sharded) "serve.shard.views"
      with
      | Some n when n >= 1 -> ()
      | _ -> Alcotest.fail (ctxt ^ ": sharded server built no shard view"))
    [
      (Planner.Generic_join, "generic_join.intersections");
      (Planner.Leapfrog, "leapfrog.seeks");
    ]

(* --- the compiled plan tier through the server --- *)

(* A compiled server and a --no-compile server must be observationally
   identical (rows, counts, engine work counters); the compiled one
   reports "compiled":true in its plan and accounts compilation cache
   traffic: one serve.compile.miss for the first lowering, then a
   serve.compile.hit per reuse of the cached plan - also when the
   answer itself comes from the result cache, since the plan cache is
   consulted first. *)
let test_compile_tier_served () =
  let rng = Prng.create 4242 in
  let edges = List.init 60 (fun _ -> [ Prng.int rng 12; Prng.int rng 12 ]) in
  List.iter
    (fun (engine, work_counter) ->
      let compiled = Server.create () in
      let interpreted =
        Server.create
          ~config:{ Server.default_config with compile = false }
          ()
      in
      List.iter
        (fun srv ->
          ignore (handle_ok srv "load E" (load_req "E" [ "u"; "v" ] edges)))
        [ compiled; interpreted ];
      let r0 = handle_ok compiled "compiled" (query_req ~engine triangle_text) in
      let r1 =
        handle_ok interpreted "interpreted" (query_req ~engine triangle_text)
      in
      let ctxt = Planner.engine_name engine in
      (match field "compiled" (field "plan" r0) with
      | Json.Bool true -> ()
      | _ -> Alcotest.fail (ctxt ^ ": plan not marked compiled"));
      (match field "compiled" (field "plan" r1) with
      | Json.Bool false -> ()
      | _ -> Alcotest.fail (ctxt ^ ": --no-compile plan marked compiled"));
      check Alcotest.string (ctxt ^ ": identical rows")
        (Json.to_string (field "rows" r0))
        (Json.to_string (field "rows" r1));
      check
        Alcotest.(option int)
        (ctxt ^ ": " ^ work_counter ^ " bit-identical")
        (Metrics.find_counter (Server.metrics interpreted) work_counter)
        (Metrics.find_counter (Server.metrics compiled) work_counter);
      let counter name = Metrics.find_counter (Server.metrics compiled) name in
      check
        Alcotest.(option int)
        (ctxt ^ ": one compilation miss")
        (Some 1) (counter "serve.compile.misses");
      check Alcotest.(option int) (ctxt ^ ": no hits yet") None
        (counter "serve.compile.hits");
      ignore
        (handle_ok compiled "repeated" (query_req ~engine triangle_text));
      check
        Alcotest.(option int)
        (ctxt ^ ": repeat reuses the compiled plan")
        (Some 1) (counter "serve.compile.hits");
      check
        Alcotest.(option int)
        (ctxt ^ ": no second lowering")
        (Some 1) (counter "serve.compile.misses");
      check
        Alcotest.(option int)
        (ctxt ^ ": interpreted server never compiles")
        None
        (Metrics.find_counter (Server.metrics interpreted)
           "serve.compile.misses"))
    [
      (Planner.Generic_join, "generic_join.intersections");
      (Planner.Leapfrog, "leapfrog.seeks");
    ]

(* --- count_only / limit shaping --- *)

let test_response_shaping () =
  let srv = Server.create () in
  ignore
    (handle_ok srv "load"
       (load_req "R" [ "a"; "b" ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]));
  let r =
    Server.handle srv
      (Protocol.Query
         {
           text = "R(a,b)";
           opts = { Protocol.default_opts with count_only = true };
         })
  in
  expect_ok "count_only" r;
  check Alcotest.int "count" 3 (int_of (field "count" r));
  check Alcotest.bool "no rows field" true (Json.member "rows" r = None);
  let r =
    Server.handle srv
      (Protocol.Query
         { text = "R(a,b)"; opts = { Protocol.default_opts with limit = Some 2 } })
  in
  expect_ok "limited" r;
  check Alcotest.int "count unaffected by limit" 3 (int_of (field "count" r));
  check Alcotest.int "rows limited" 2 (List.length (rows_of_response r));
  check Alcotest.bool "marked truncated" true
    (match field "truncated" r with Json.Bool b -> b | _ -> false)

let suite =
  [
    Alcotest.test_case "planner differential vs hash-join oracle" `Quick
      test_planner_differential;
    Alcotest.test_case "protocol round-trip fuzz" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "json canonical printing" `Quick test_json_canonical;
    Alcotest.test_case "bounded-queue overload rejection" `Quick
      test_overload_rejection;
    Alcotest.test_case "scripted session (plans, cache, timeout, \
                        invalidation)" `Quick test_scripted_session;
    Alcotest.test_case "serve_pipe window semantics" `Quick
      test_serve_pipe_session;
    Alcotest.test_case "count_only and limit shaping" `Quick
      test_response_shaping;
    Alcotest.test_case "protocol v1 version stamping" `Quick
      test_protocol_versioning;
    Alcotest.test_case "hello capability discovery" `Quick
      test_hello_capabilities;
    Alcotest.test_case "unknown request fields tolerated" `Quick
      test_unknown_field_tolerance;
    Alcotest.test_case "unknown-field splice fuzz" `Quick
      test_unknown_field_fuzz;
    Alcotest.test_case "batch of identical plans shares one trie build"
      `Quick test_batch_shares_trie_build;
    Alcotest.test_case "a timeout inside a batch is isolated" `Quick
      test_batch_timeout_isolation;
    Alcotest.test_case "sharded server answers bit-identical" `Quick
      test_sharded_server_bit_identical;
    Alcotest.test_case "compiled tier served bit-identical, plans cached"
      `Quick test_compile_tier_served;
  ]
