(* Standalone runner for the distributed-serve suite: it forks worker
   processes, and OCaml 5 forbids Unix.fork once any other domain has
   been spawned - so these tests cannot share a process with the
   pool-using suites in test_main. *)

let () = Alcotest.run "lowerbounds-dist" [ ("dist", Test_dist.suite) ]
