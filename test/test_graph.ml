(* Tests for lb_graph: graph structure, generators, treewidth, cliques,
   triangles, vertex cover, dominating set, coloring, homomorphism and
   partitioned subgraph isomorphism. *)

module Graph = Lb_graph.Graph
module Gen = Lb_graph.Generators
module Td = Lb_graph.Tree_decomposition
module Tw = Lb_graph.Treewidth
module Clique = Lb_graph.Clique
module Triangle = Lb_graph.Triangle
module Prng = Lb_util.Prng

let check = Alcotest.check

let random_graph seed n p =
  let rng = Prng.create seed in
  Gen.gnp rng n p

(* --- basics --- *)

let test_graph_basics () =
  let g = Graph.create 5 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  (* duplicate ignored *)
  check Alcotest.int "m" 1 (Graph.edge_count g);
  Alcotest.(check bool) "has" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "no self" false (Graph.has_edge g 1 1);
  check Alcotest.int "deg" 1 (Graph.degree g 0);
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 2 2)

let test_components () =
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (3, 4) ] in
  let comps = Graph.connected_components g in
  check Alcotest.int "three components" 3 (Array.length comps);
  Alcotest.(check bool) "not connected" false (Graph.is_connected g)

let test_complement () =
  let g = Gen.clique 4 in
  let c = Graph.complement g in
  check Alcotest.int "empty complement" 0 (Graph.edge_count c);
  let p = Gen.path 4 in
  let pc = Graph.complement p in
  check Alcotest.int "path complement edges" 3 (Graph.edge_count pc)

let test_induced () =
  let g = Gen.cycle 5 in
  let sub, map = Graph.induced g [| 0; 1; 2 |] in
  check Alcotest.int "2 edges" 2 (Graph.edge_count sub);
  check Alcotest.(list int) "map" [ 0; 1; 2 ] (Array.to_list map)

let test_is_path () =
  Alcotest.(check bool) "path" true (Graph.is_path (Gen.path 7));
  Alcotest.(check bool) "cycle not path" false (Graph.is_path (Gen.cycle 5));
  Alcotest.(check bool) "single vertex" true (Graph.is_path (Graph.create 1));
  Alcotest.(check bool) "star not path" false (Graph.is_path (Gen.star 4))

let test_special_recognizer () =
  let s = Gen.special 3 in
  check Alcotest.int "vertices" (3 + 8) (Graph.vertex_count s);
  (match Gen.recognize_special s with
  | Some (cl, pa) ->
      check Alcotest.int "clique size" 3 (Array.length cl);
      check Alcotest.int "path size" 8 (Array.length pa)
  | None -> Alcotest.fail "should recognize special graph");
  Alcotest.(check bool) "clique alone not special" true
    (Gen.recognize_special (Gen.clique 4) = None)

(* --- generators --- *)

let test_gnm_edges () =
  let g = Gen.gnm (Prng.create 2) 10 17 in
  check Alcotest.int "m" 17 (Graph.edge_count g)

let test_planted_clique () =
  let g, vs = Gen.planted_clique (Prng.create 9) 30 0.2 6 in
  Alcotest.(check bool) "planted is clique" true (Graph.is_clique g vs)

let test_grid () =
  let g = Gen.grid 3 4 in
  check Alcotest.int "vertices" 12 (Graph.vertex_count g);
  check Alcotest.int "edges" ((2 * 4) + (3 * 3)) (Graph.edge_count g)

let test_partial_ktree_treewidth () =
  let g = Gen.random_partial_ktree (Prng.create 4) 15 3 ~drop:0.0 in
  let w, _ = Tw.exact g in
  Alcotest.(check bool) "tw <= 3" true (w <= 3)

(* --- tree decompositions and treewidth --- *)

let test_td_verify_valid () =
  let g = Gen.cycle 5 in
  let order = Array.init 5 Fun.id in
  let td = Td.of_elimination_order g order in
  (match Td.verify td g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %a" Td.pp_failure e);
  Alcotest.(check bool) "width >= 2" true (Td.width td >= 2)

let test_td_verify_catches_missing_edge () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let td = Td.make ~bags:[| [| 0; 1 |]; [| 1; 2 |] |] ~tree:[ (0, 1) ] in
  match Td.verify td g with
  | Error (Td.Edge_uncovered _) -> ()
  | _ -> Alcotest.fail "expected edge-uncovered failure"

let test_td_verify_catches_disconnected () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let td =
    Td.make
      ~bags:[| [| 0; 1 |]; [| 1; 2 |]; [| 0 |] |]
      ~tree:[ (0, 1); (1, 2) ]
  in
  match Td.verify td g with
  | Error (Td.Disconnected_occurrence 0) -> ()
  | Ok () -> Alcotest.fail "expected failure"
  | Error e -> Alcotest.failf "unexpected: %a" Td.pp_failure e

let test_treewidth_known_values () =
  let w g = fst (Tw.exact g) in
  check Alcotest.int "path tw" 1 (w (Gen.path 8));
  check Alcotest.int "cycle tw" 2 (w (Gen.cycle 7));
  check Alcotest.int "clique tw" 5 (w (Gen.clique 6));
  check Alcotest.int "tree tw" 1 (w (Gen.random_tree (Prng.create 3) 12));
  check Alcotest.int "grid 3x3 tw" 3 (w (Gen.grid 3 3));
  check Alcotest.int "K(3,3) tw" 3 (w (Gen.complete_bipartite 3 3));
  check Alcotest.int "single vertex" 0 (w (Graph.create 1));
  check Alcotest.int "empty graph" 0 (w (Graph.create 0));
  (* the Petersen graph: vertices = 2-subsets of [5), outer/inner
     5-cycles plus spokes; treewidth 4 *)
  let petersen =
    Graph.of_edges 10
      (List.init 5 (fun i -> (i, (i + 1) mod 5)) (* outer C5 *)
      @ List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) (* inner C5 step 2 *)
      @ List.init 5 (fun i -> (i, 5 + i)))
  in
  check Alcotest.int "petersen tw" 4 (w petersen);
  (* grid 4x4 has treewidth 4 *)
  check Alcotest.int "grid 4x4 tw" 4 (w (Gen.grid 4 4))

let treewidth_sandwich_prop =
  QCheck.Test.make ~name:"degeneracy <= exact tw <= heuristic width" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 4 + Prng.int rng 8 in
      let g = Gen.gnp rng n 0.35 in
      let lower = Tw.degeneracy g in
      let exact, order = Tw.exact g in
      let heuristic, _ = Tw.heuristic_upper_bound g in
      let td = Td.of_elimination_order g order in
      lower <= exact && exact <= heuristic
      && Td.width td = exact
      && Td.verify td g = Ok ())

let heuristic_td_valid_prop =
  QCheck.Test.make ~name:"heuristic decompositions verify" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 5 + Prng.int rng 20 in
      let g = Gen.gnp rng n 0.2 in
      let _, order = Tw.heuristic_upper_bound g in
      Td.verify (Td.of_elimination_order g order) g = Ok ())

(* --- nice tree decompositions --- *)

module Nice = Lb_graph.Nice_td

let nice_td_valid_prop =
  QCheck.Test.make ~name:"nice decompositions verify and keep the width"
    ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 12 in
      let g = Gen.gnp rng n 0.3 in
      let _, order = Tw.heuristic_upper_bound g in
      let td = Td.of_elimination_order g order in
      let nice = Nice.of_decomposition td in
      Nice.verify nice
      && Nice.width nice = Td.width td
      && Array.length (Nice.bag nice) = 0)

let test_nice_td_structure () =
  let g = Gen.cycle 4 in
  let td = Td.of_elimination_order g (Array.init 4 Fun.id) in
  let nice = Nice.of_decomposition td in
  Alcotest.(check bool) "verifies" true (Nice.verify nice);
  Alcotest.(check bool) "has nodes" true (Nice.size nice >= 4)

(* --- cliques --- *)

let test_clique_bruteforce () =
  let g = Gen.clique 5 in
  (match Clique.find_bruteforce g 5 with
  | Some c -> Alcotest.(check bool) "is clique" true (Graph.is_clique g c)
  | None -> Alcotest.fail "clique expected");
  Alcotest.(check bool) "no 6-clique" true (Clique.find_bruteforce g 6 = None)

let test_clique_counts () =
  let g = Gen.clique 5 in
  check Alcotest.int "5 choose 3 triangles" 10 (Clique.count_cliques g 3);
  check Alcotest.int "edges" 10 (Clique.count_cliques g 2)

let clique_matmul_agrees_prop =
  QCheck.Test.make ~name:"matmul k-clique agrees with brute force (k=3,6)"
    ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 6 + Prng.int rng 10 in
      let g = Gen.gnp rng n 0.5 in
      let agree k =
        let bf = Clique.find_bruteforce g k <> None in
        let mm = Clique.find_matmul g k <> None in
        bf = mm
      in
      agree 3 && agree 6)

let test_matmul_witness_is_clique () =
  let g, _ = Gen.planted_clique (Prng.create 77) 25 0.3 6 in
  match Clique.find_matmul g 6 with
  | Some c ->
      Alcotest.(check bool) "witness clique" true (Graph.is_clique g c);
      check Alcotest.int "size" 6
        (List.length (List.sort_uniq compare (Array.to_list c)))
  | None -> Alcotest.fail "planted clique not found"

let test_max_clique () =
  let g, planted = Gen.planted_clique (Prng.create 13) 20 0.2 5 in
  let mc = Clique.max_clique g in
  Alcotest.(check bool) "is clique" true (Graph.is_clique g mc);
  Alcotest.(check bool) "at least planted size" true
    (Array.length mc >= Array.length planted)

(* --- triangles --- *)

let triangle_detectors_agree_prop =
  QCheck.Test.make ~name:"four triangle detectors agree" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 25 in
      let p = 0.05 +. Prng.float rng 0.3 in
      let g = Gen.gnp rng n p in
      let naive = Triangle.detect_naive g <> None in
      let scan = Triangle.detect_edge_scan g <> None in
      let mm = Triangle.detect_matmul g <> None in
      let hl = Triangle.detect_heavy_light g <> None in
      naive = scan && scan = mm && mm = hl)

let triangle_counts_agree_prop =
  QCheck.Test.make ~name:"triangle counts agree" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 20 in
      let g = Gen.gnp rng n 0.3 in
      Triangle.count_matmul g = Triangle.count_edge_scan g
      && Triangle.count_matmul g = Clique.count_cliques g 3)

let test_triangle_witness () =
  let g = Gen.cycle 3 in
  match Triangle.detect_heavy_light g with
  | Some (a, b, c) ->
      Alcotest.(check bool) "real triangle" true
        (Graph.has_edge g a b && Graph.has_edge g b c && Graph.has_edge g a c)
  | None -> Alcotest.fail "triangle expected"

let test_no_triangle_in_bipartite () =
  let g = Gen.complete_bipartite 4 5 in
  Alcotest.(check bool) "bipartite has none" true (Triangle.detect_matmul g = None);
  check Alcotest.int "count 0" 0 (Triangle.count_edge_scan g)

(* --- vertex cover --- *)

module Vc = Lb_graph.Vertex_cover

let vc_fpt_agrees_prop =
  QCheck.Test.make ~name:"vertex cover FPT agrees with brute force" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 4 + Prng.int rng 8 in
      let g = Gen.gnp rng n 0.3 in
      let ok = ref true in
      for k = 0 to 5 do
        let f = Vc.solve_fpt g k and b = Vc.solve_bruteforce g k in
        (match (f, b) with
        | Some c, Some _ ->
            if not (Vc.is_cover g c && Array.length c <= k) then ok := false
        | None, None -> ()
        | _ -> ok := false)
      done;
      !ok)

let test_vc_greedy_cover () =
  let g = random_graph 5 15 0.3 in
  Alcotest.(check bool) "greedy covers" true (Vc.is_cover g (Vc.greedy_2approx g))

let test_vc_star () =
  let g = Gen.star 6 in
  match Vc.solve_fpt g 1 with
  | Some c ->
      check Alcotest.int "center suffices" 1 (Array.length c);
      check Alcotest.int "center" 0 c.(0)
  | None -> Alcotest.fail "star has VC of size 1"

(* --- dominating set --- *)

module Ds = Lb_graph.Dominating_set

let test_domset_clique () =
  let g = Gen.clique 6 in
  match Ds.solve_bruteforce g 1 with
  | Some d -> check Alcotest.int "single vertex dominates" 1 (Array.length d)
  | None -> Alcotest.fail "clique dominated by any vertex"

let test_domset_greedy () =
  let g = random_graph 21 20 0.2 in
  Alcotest.(check bool) "greedy dominates" true (Ds.is_dominating g (Ds.greedy g))

let domset_greedy_vs_optimal_prop =
  QCheck.Test.make ~name:"greedy dominating set >= optimal size" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 4 + Prng.int rng 8 in
      let g = Gen.gnp rng n 0.3 in
      let greedy = Ds.greedy g in
      (* find the optimum by increasing k *)
      let rec opt k =
        match Ds.solve_bruteforce g k with Some s -> s | None -> opt (k + 1)
      in
      let optimal = opt 1 in
      Ds.is_dominating g greedy
      && Array.length greedy >= Array.length optimal)

let test_domset_path () =
  let g = Gen.path 9 in
  (* path on 9 vertices needs exactly 3 dominators *)
  Alcotest.(check bool) "k=2 fails" true (Ds.solve_bruteforce g 2 = None);
  match Ds.solve_bruteforce g 3 with
  | Some d -> Alcotest.(check bool) "dominates" true (Ds.is_dominating g d)
  | None -> Alcotest.fail "3 should dominate P9"

(* --- coloring --- *)

module Col = Lb_graph.Coloring

let test_coloring_basic () =
  let g = Gen.cycle 5 in
  Alcotest.(check bool) "odd cycle not 2-colorable" true (Col.color g 2 = None);
  (match Col.color g 3 with
  | Some c -> Alcotest.(check bool) "valid" true (Col.is_coloring g 3 c)
  | None -> Alcotest.fail "C5 is 3-colorable");
  let k4 = Gen.clique 4 in
  Alcotest.(check bool) "K4 not 3-colorable" true (Col.color k4 3 = None)

let coloring_bipartite_prop =
  QCheck.Test.make ~name:"trees are 2-colorable" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Gen.random_tree rng (2 + Prng.int rng 20) in
      match Col.color g 2 with
      | Some c -> Col.is_coloring g 2 c
      | None -> false)

(* --- homomorphism --- *)

module Hom = Lb_graph.Homomorphism

let test_hom_basics () =
  (* C5 -> C5 identity-ish; C4 -> K2 (bipartite); C5 -/-> K2 (odd) *)
  let c5 = Gen.cycle 5 and c4 = Gen.cycle 4 and k2 = Gen.clique 2 in
  Alcotest.(check bool) "C4 -> K2" true (Hom.find c4 k2 <> None);
  Alcotest.(check bool) "C5 -/-> K2" true (Hom.find c5 k2 = None);
  (match Hom.find c5 c5 with
  | Some f -> Alcotest.(check bool) "valid hom" true (Hom.is_homomorphism c5 c5 f)
  | None -> Alcotest.fail "identity exists");
  (* hom to a triangle = 3-colorability *)
  let k3 = Gen.clique 3 in
  Alcotest.(check bool) "C5 -> K3" true (Hom.find c5 k3 <> None)

let hom_matches_coloring_prop =
  QCheck.Test.make ~name:"hom into K_k iff k-colorable" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 8 in
      let g = Gen.gnp rng n 0.4 in
      let ok = ref true in
      for k = 2 to 4 do
        let hom = Hom.find g (Gen.clique k) <> None in
        let col = Col.color g k <> None in
        if hom <> col then ok := false
      done;
      !ok)

(* --- partitioned subgraph isomorphism --- *)

module Psi = Lb_graph.Subgraph_iso

let test_psi_triangle () =
  (* host: 3 classes of 2 vertices, triangle across classes exists *)
  let host = Graph.create 6 in
  Graph.add_edge host 0 2;
  Graph.add_edge host 2 4;
  Graph.add_edge host 0 4;
  let pattern = Gen.clique 3 in
  let classes = [| [| 0; 1 |]; [| 2; 3 |]; [| 4; 5 |] |] in
  (match Psi.find pattern host classes with
  | Some f -> Alcotest.(check bool) "respects" true (Psi.respects pattern host classes f)
  | None -> Alcotest.fail "triangle should be found");
  (* remove one edge: no triangle *)
  let host2 = Graph.create 6 in
  Graph.add_edge host2 0 2;
  Graph.add_edge host2 2 4;
  Alcotest.(check bool) "no triangle" true (Psi.find pattern host2 classes = None)

(* --- distances --- *)

module Dist = Lb_graph.Distance

let test_distance_known () =
  let p = Gen.path 6 in
  check Alcotest.(option int) "path diameter" (Some 5) (Dist.diameter p);
  check Alcotest.(option int) "path radius" (Some 3) (Dist.radius p);
  let c = Gen.cycle 6 in
  check Alcotest.(option int) "cycle diameter" (Some 3) (Dist.diameter c);
  check Alcotest.(option int) "cycle radius" (Some 3) (Dist.radius c);
  let k = Gen.clique 5 in
  check Alcotest.(option int) "clique diameter" (Some 1) (Dist.diameter k);
  let s = Gen.star 5 in
  check Alcotest.(option int) "star diameter" (Some 2) (Dist.diameter s);
  check Alcotest.(option int) "star radius" (Some 1) (Dist.radius s)

let test_distance_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  check Alcotest.(option int) "disconnected" None (Dist.diameter g);
  let d = Dist.bfs g 0 in
  check Alcotest.int "unreachable -1" (-1) d.(2)

let diameter_approx_prop =
  QCheck.Test.make ~name:"one-BFS eccentricity 2-approximates the diameter"
    ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 20 in
      (* connect by using a random tree plus extra edges *)
      let g = Gen.random_tree rng n in
      for _ = 1 to n / 2 do
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v then Graph.add_edge g u v
      done;
      match (Dist.diameter g, Dist.diameter_2approx g) with
      | Some d, Some e -> e <= d && d <= 2 * e
      | _ -> false)

let bfs_triangle_inequality_prop =
  QCheck.Test.make ~name:"BFS distances satisfy the triangle inequality"
    ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 12 in
      let g = Gen.random_tree rng n in
      for _ = 1 to n do
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v then Graph.add_edge g u v
      done;
      let d = Dist.all_pairs g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if d.(a).(b) > d.(a).(c) + d.(c).(b) then ok := false
          done
        done
      done;
      !ok)

let diameter_matmul_agrees_prop =
  QCheck.Test.make
    ~name:"matmul diameter = n-BFS diameter (incl. disconnected)" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 1 + Prng.int rng 24 in
      (* half the draws are sparse enough to be disconnected often *)
      let p = if Prng.bernoulli rng 0.5 then 0.05 else 0.3 in
      let g = Gen.gnp rng n p in
      Dist.diameter_matmul g = Dist.diameter g)

let pooled_distance_and_triangle_agree_prop =
  QCheck.Test.make
    ~name:"pooled diameter/diameter_matmul/detect_matmul match sequential"
    ~count:20
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 20 in
      let g = Gen.gnp rng n 0.25 in
      Lb_util.Pool.with_pool 2 (fun pool ->
          let ctx = Lb_util.Exec.make ~pool () in
          Dist.diameter ~ctx g = Dist.diameter g
          && Dist.diameter_matmul ~ctx g = Dist.diameter_matmul g
          && (Triangle.detect_matmul ~ctx g <> None)
             = (Triangle.detect_matmul g <> None)
          && Triangle.count_matmul ~ctx g = Triangle.count_matmul g))

let subgraph_iso_matches_clique_prop =
  QCheck.Test.make ~name:"subgraph iso finds k-cliques iff brute force does"
    ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 4 + Prng.int rng 8 in
      let g = Gen.gnp rng n 0.5 in
      let ok = ref true in
      for k = 2 to 4 do
        let via_iso = Psi.find_unpartitioned (Gen.clique k) g in
        let via_bf = Clique.find_bruteforce g k in
        (match via_iso with
        | Some f ->
            if not (Psi.is_subgraph_embedding (Gen.clique k) g f) then ok := false
        | None -> ());
        if (via_iso <> None) <> (via_bf <> None) then ok := false
      done;
      !ok)

let test_subgraph_iso_injective () =
  (* a path of 3 vertices embeds in C5, not in K2 (too few vertices) *)
  let p3 = Gen.path 3 in
  Alcotest.(check bool) "P3 in C5" true
    (Psi.find_unpartitioned p3 (Gen.cycle 5) <> None);
  Alcotest.(check bool) "P3 not in K2" true
    (Psi.find_unpartitioned p3 (Gen.clique 2) = None);
  (* homomorphism exists where embedding does not: P3 -> K2 folds *)
  Alcotest.(check bool) "hom P3 -> K2 exists" true
    (Hom.find p3 (Gen.clique 2) <> None)

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    QCheck_alcotest.to_alcotest subgraph_iso_matches_clique_prop;
    Alcotest.test_case "subgraph iso injectivity" `Quick test_subgraph_iso_injective;
    Alcotest.test_case "distances known" `Quick test_distance_known;
    Alcotest.test_case "distances disconnected" `Quick test_distance_disconnected;
    QCheck_alcotest.to_alcotest diameter_approx_prop;
    QCheck_alcotest.to_alcotest diameter_matmul_agrees_prop;
    QCheck_alcotest.to_alcotest pooled_distance_and_triangle_agree_prop;
    QCheck_alcotest.to_alcotest bfs_triangle_inequality_prop;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "induced" `Quick test_induced;
    Alcotest.test_case "is_path" `Quick test_is_path;
    Alcotest.test_case "special graphs" `Quick test_special_recognizer;
    Alcotest.test_case "gnm edge count" `Quick test_gnm_edges;
    Alcotest.test_case "planted clique" `Quick test_planted_clique;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "partial k-tree width" `Quick test_partial_ktree_treewidth;
    Alcotest.test_case "td of elimination order" `Quick test_td_verify_valid;
    Alcotest.test_case "td verifier: edge" `Quick test_td_verify_catches_missing_edge;
    Alcotest.test_case "td verifier: connectivity" `Quick
      test_td_verify_catches_disconnected;
    Alcotest.test_case "treewidth known values" `Quick test_treewidth_known_values;
    QCheck_alcotest.to_alcotest treewidth_sandwich_prop;
    QCheck_alcotest.to_alcotest heuristic_td_valid_prop;
    QCheck_alcotest.to_alcotest nice_td_valid_prop;
    Alcotest.test_case "nice td structure" `Quick test_nice_td_structure;
    Alcotest.test_case "clique brute force" `Quick test_clique_bruteforce;
    Alcotest.test_case "clique counts" `Quick test_clique_counts;
    QCheck_alcotest.to_alcotest clique_matmul_agrees_prop;
    Alcotest.test_case "matmul witness" `Quick test_matmul_witness_is_clique;
    Alcotest.test_case "max clique" `Quick test_max_clique;
    QCheck_alcotest.to_alcotest triangle_detectors_agree_prop;
    QCheck_alcotest.to_alcotest triangle_counts_agree_prop;
    Alcotest.test_case "triangle witness" `Quick test_triangle_witness;
    Alcotest.test_case "bipartite no triangle" `Quick test_no_triangle_in_bipartite;
    QCheck_alcotest.to_alcotest vc_fpt_agrees_prop;
    Alcotest.test_case "vc greedy" `Quick test_vc_greedy_cover;
    Alcotest.test_case "vc star" `Quick test_vc_star;
    Alcotest.test_case "domset clique" `Quick test_domset_clique;
    Alcotest.test_case "domset greedy" `Quick test_domset_greedy;
    QCheck_alcotest.to_alcotest domset_greedy_vs_optimal_prop;
    Alcotest.test_case "domset path" `Quick test_domset_path;
    Alcotest.test_case "coloring basics" `Quick test_coloring_basic;
    QCheck_alcotest.to_alcotest coloring_bipartite_prop;
    Alcotest.test_case "homomorphism basics" `Quick test_hom_basics;
    QCheck_alcotest.to_alcotest hom_matches_coloring_prop;
    Alcotest.test_case "partitioned subgraph iso" `Quick test_psi_triangle;
  ]
