(* Tests for lb_finegrained: edit distance, LCS, orthogonal vectors. *)

module Ed = Lb_finegrained.Edit_distance
module Lcs = Lb_finegrained.Lcs
module Ov = Lb_finegrained.Ov
module Prng = Lb_util.Prng

let check = Alcotest.check

let s_of_string s = Array.init (String.length s) (fun i -> Char.code s.[i])

let test_edit_distance_known () =
  check Alcotest.int "kitten/sitting" 3
    (Ed.quadratic (s_of_string "kitten") (s_of_string "sitting"));
  check Alcotest.int "empty" 5 (Ed.quadratic [||] (s_of_string "hello"));
  check Alcotest.int "equal" 0
    (Ed.quadratic (s_of_string "abc") (s_of_string "abc"));
  check Alcotest.int "flaw/lawn" 2
    (Ed.quadratic (s_of_string "flaw") (s_of_string "lawn"))

let test_banded_known () =
  let a = s_of_string "kitten" and b = s_of_string "sitting" in
  check Alcotest.(option int) "band 3 finds it" (Some 3) (Ed.banded a b ~band:3);
  check Alcotest.(option int) "band 2 gives up" None (Ed.banded a b ~band:2);
  check Alcotest.(option int) "band 1 width mismatch" None
    (Ed.banded [||] (s_of_string "xyz") ~band:1)

let banded_agrees_prop =
  QCheck.Test.make ~name:"banded = quadratic when distance within band"
    ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 1 + Prng.int rng 30 in
      let a, b = Ed.mutated_pair rng n 4 (Prng.int rng 5) in
      let d = Ed.quadratic a b in
      match Ed.banded a b ~band:(max 1 d) with
      | Some d' -> d = d'
      | None -> false)

let adaptive_agrees_prop =
  QCheck.Test.make ~name:"adaptive = quadratic always" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int rng 40 in
      let m = Prng.int rng 40 in
      let a = Ed.random_string rng n 3 in
      let b = Ed.random_string rng m 3 in
      Ed.adaptive a b = Ed.quadratic a b)

let edit_distance_metric_prop =
  QCheck.Test.make ~name:"edit distance is a metric (triangle inequality)"
    ~count:50
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Prng.create seed in
      let s () = Ed.random_string rng (1 + Prng.int rng 12) 3 in
      let a = s () and b = s () and c = s () in
      let d x y = Ed.quadratic x y in
      d a c <= d a b + d b c
      && d a b = d b a
      && d a a = 0)

let test_lcs_known () =
  check Alcotest.int "ABCBDAB/BDCABA" 4
    (Lcs.quadratic (s_of_string "ABCBDAB") (s_of_string "BDCABA"));
  check Alcotest.int "disjoint" 0 (Lcs.quadratic (s_of_string "abc") (s_of_string "xyz"));
  check Alcotest.int "empty" 0 (Lcs.quadratic [||] (s_of_string "abc"))

let lcs_bitparallel_agrees_prop =
  QCheck.Test.make ~name:"bit-parallel LCS = quadratic LCS" ~count:150
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int rng 150 in
      let m = 1 + Prng.int rng 150 in
      let a = Ed.random_string rng n 4 in
      let b = Ed.random_string rng m 4 in
      Lcs.bitparallel a b = Lcs.quadratic a b)

let lcs_vs_edit_distance_prop =
  QCheck.Test.make ~name:"indel distance = n + m - 2*LCS >= edit distance"
    ~count:60
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int rng 20 and m = Prng.int rng 20 in
      let a = Ed.random_string rng n 3 in
      let b = Ed.random_string rng m 3 in
      let indel = n + m - (2 * Lcs.quadratic a b) in
      Ed.quadratic a b <= indel)

let test_ov_basic () =
  let inst =
    Ov.of_bool_arrays ~dim:3
      [| [| true; false; false |]; [| true; true; false |] |]
      [| [| true; false; true |]; [| false; false; true |] |]
  in
  (match Ov.solve inst with
  | Some (0, 1) -> ()
  | Some (i, j) -> Alcotest.failf "unexpected witness (%d,%d)" i j
  | None -> Alcotest.fail "orthogonal pair exists");
  (* (0,1) and (1,1) are both orthogonal pairs *)
  check Alcotest.int "count" 2 (Ov.count inst)

let test_ov_none () =
  let inst =
    Ov.of_bool_arrays ~dim:2
      [| [| true; false |] |]
      [| [| true; true |] |]
  in
  Alcotest.(check bool) "no pair" true (Ov.solve inst = None)

let ov_packing_prop =
  QCheck.Test.make ~name:"packed orthogonality = boolean orthogonality"
    ~count:80
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Prng.create seed in
      let dim = 1 + Prng.int rng 130 in
      let v () = Array.init dim (fun _ -> Prng.bernoulli rng 0.3) in
      let a = v () and b = v () in
      let packed = Ov.of_bool_arrays ~dim [| a |] [| b |] in
      let naive =
        not (Array.exists2 (fun x y -> x && y) a b)
      in
      (Ov.solve packed <> None) = naive)

(* The pairs_scanned counter is exact: i*nr + j + 1 at a witness (i, j),
   nl*nr on a miss — pinned on fixed seeds, and identical between the
   quadratic scan and the blocked kernel route. *)
let test_ov_pairs_scanned_exact () =
  let find_counter m =
    Option.get (Lb_util.Metrics.find_counter m "ov.pairs_scanned")
  in
  let scan_count solve inst =
    let m = Lb_util.Metrics.create () in
    let w = solve m inst in
    (w, find_counter m)
  in
  (* seed 11: p = 0.5, dim 16, n = 32 - witnesses exist *)
  let rng = Prng.create 11 in
  let inst = Ov.random rng ~n:32 ~dim:16 ~p:0.5 in
  let solve_m m i = Ov.solve ~ctx:(Lb_util.Exec.make ~metrics:m ()) i in
  let blocked_m m i =
    Ov.solve_blocked ~ctx:(Lb_util.Exec.make ~metrics:m ()) i
  in
  let w, pairs = scan_count solve_m inst in
  (match w with
  | Some (i, j) -> check Alcotest.int "witness prefix" ((i * 32) + j + 1) pairs
  | None -> check Alcotest.int "full scan" (32 * 32) pairs);
  let wb, pairs_b = scan_count blocked_m inst in
  Alcotest.(check bool) "same witness" true (wb = w);
  check Alcotest.int "blocked counter matches" pairs pairs_b;
  (* seed 12: p = 0.9, dim 32 - no orthogonal pair, both scan nl*nr *)
  let rng = Prng.create 12 in
  let inst2 = Ov.random rng ~n:20 ~dim:32 ~p:0.9 in
  let w2, pairs2 = scan_count solve_m inst2 in
  Alcotest.(check bool) "no witness" true (w2 = None);
  check Alcotest.int "exhaustive count" (20 * 20) pairs2;
  let w2b, pairs2b = scan_count blocked_m inst2 in
  Alcotest.(check bool) "no witness blocked" true (w2b = None);
  check Alcotest.int "exhaustive blocked" (20 * 20) pairs2b

(* A budget interrupt mid-scan still records the completed prefix: the
   quadratic scan ticks once per left row, so an exhausted budget after
   r ticks has scanned exactly r * nr pairs (no witness exists here). *)
let test_ov_pairs_scanned_budget () =
  let rng = Prng.create 13 in
  let inst = Ov.random rng ~n:24 ~dim:32 ~p:0.9 in
  let m = Lb_util.Metrics.create () in
  let budget = Lb_util.Budget.create ~ticks:10 () in
  (match Ov.solve_bounded ~ctx:(Lb_util.Exec.make ~budget ~metrics:m ()) inst with
  | Lb_util.Budget.Exhausted _ -> ()
  | Lb_util.Budget.Done _ -> Alcotest.fail "expected exhaustion");
  (* tick precedes each row scan, so 10 ticks admit 10 full rows; the
     11th tick raises before row 10 contributes anything *)
  check Alcotest.int "partial prefix" (10 * 24)
    (Option.get (Lb_util.Metrics.find_counter m "ov.pairs_scanned"))

let suite =
  [
    Alcotest.test_case "edit distance known" `Quick test_edit_distance_known;
    Alcotest.test_case "banded known" `Quick test_banded_known;
    QCheck_alcotest.to_alcotest banded_agrees_prop;
    QCheck_alcotest.to_alcotest adaptive_agrees_prop;
    QCheck_alcotest.to_alcotest edit_distance_metric_prop;
    Alcotest.test_case "lcs known" `Quick test_lcs_known;
    QCheck_alcotest.to_alcotest lcs_bitparallel_agrees_prop;
    QCheck_alcotest.to_alcotest lcs_vs_edit_distance_prop;
    Alcotest.test_case "ov basic" `Quick test_ov_basic;
    Alcotest.test_case "ov none" `Quick test_ov_none;
    QCheck_alcotest.to_alcotest ov_packing_prop;
    Alcotest.test_case "ov pairs_scanned exact" `Quick
      test_ov_pairs_scanned_exact;
    Alcotest.test_case "ov pairs_scanned budget" `Quick
      test_ov_pairs_scanned_budget;
  ]
