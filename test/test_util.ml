(* Tests for lb_util: PRNG, bitsets, union-find, matrices, combinatorics,
   the table printer and the regression fits. *)

module Prng = Lb_util.Prng
module Bitset = Lb_util.Bitset
module Union_find = Lb_util.Union_find
module Matrix = Lb_util.Matrix
module Combinat = Lb_util.Combinat
module Stopwatch = Lb_util.Stopwatch
module Bits = Lb_util.Bits
module Exec = Lb_util.Exec
module Budget = Lb_util.Budget
module Metrics = Lb_util.Metrics
module Pool = Lb_util.Pool

let check = Alcotest.check

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.bits a) (Prng.bits b)
  done

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_prng_int_rejects () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_sample () =
  let rng = Prng.create 3 in
  for _ = 1 to 50 do
    let s = Prng.sample rng 20 5 in
    check Alcotest.int "size" 5 (Array.length s);
    let l = Array.to_list s in
    check Alcotest.(list int) "sorted distinct" (List.sort_uniq compare l) l;
    List.iter (fun v -> Alcotest.(check bool) "range" true (v >= 0 && v < 20)) l
  done

let test_prng_shuffle_permutation () =
  let rng = Prng.create 11 in
  let a = Array.init 30 Fun.id in
  let b = Prng.shuffle rng a in
  check
    Alcotest.(list int)
    "same multiset"
    (List.sort compare (Array.to_list b))
    (Array.to_list a)

let test_prng_bernoulli_frequency () =
  let rng = Prng.create 5 in
  let hits = ref 0 in
  let trials = 20000 in
  for _ = 1 to trials do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "close to 0.3" true (abs_float (freq -. 0.3) < 0.02)

(* Bitset model-based property: operations agree with a Set.Make(Int)
   model. *)
let bitset_model_prop =
  QCheck.Test.make ~name:"bitset agrees with int-set model" ~count:200
    QCheck.(pair (list (int_bound 99)) (list (int_bound 99)))
    (fun (xs, ys) ->
      let module S = Set.Make (Int) in
      let cap = 100 in
      let bx = Bitset.of_list cap xs and by = Bitset.of_list cap ys in
      let sx = S.of_list xs and sy = S.of_list ys in
      let eq b s = Bitset.elements b = S.elements s in
      eq (Bitset.union bx by) (S.union sx sy)
      && eq (Bitset.inter bx by) (S.inter sx sy)
      && eq (Bitset.diff bx by) (S.diff sx sy)
      && Bitset.cardinal bx = S.cardinal sx
      && Bitset.subset bx by = S.subset sx sy
      && Bitset.disjoint bx by = S.disjoint sx sy
      && Bitset.inter_cardinal bx by = S.cardinal (S.inter sx sy))

let test_bitset_fill_clear () =
  let b = Bitset.create 200 in
  Bitset.fill b;
  check Alcotest.int "full" 200 (Bitset.cardinal b);
  Bitset.clear b;
  check Alcotest.int "empty" 0 (Bitset.cardinal b);
  Alcotest.(check bool) "is_empty" true (Bitset.is_empty b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: index out of range") (fun () -> Bitset.add b 10)

let test_bitset_choose () =
  let b = Bitset.of_list 50 [ 17; 3; 42 ] in
  check Alcotest.(option int) "min element" (Some 3) (Bitset.choose b);
  check Alcotest.(option int) "none" None (Bitset.choose (Bitset.create 5))

let test_union_find () =
  let uf = Union_find.create 10 in
  check Alcotest.int "initial components" 10 (Union_find.components uf);
  Alcotest.(check bool) "union" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "redundant union" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  check Alcotest.int "components" 9 (Union_find.components uf)

let test_matrix_int_mul () =
  let a = Matrix.Int.init 2 3 (fun i j -> (i * 3) + j + 1) in
  let b = Matrix.Int.init 3 2 (fun i j -> (i * 2) + j + 1) in
  let c = Matrix.Int.mul a b in
  (* [[1 2 3][4 5 6]] * [[1 2][3 4][5 6]] = [[22 28][49 64]] *)
  check Alcotest.int "c00" 22 (Matrix.Int.get c 0 0);
  check Alcotest.int "c01" 28 (Matrix.Int.get c 0 1);
  check Alcotest.int "c10" 49 (Matrix.Int.get c 1 0);
  check Alcotest.int "c11" 64 (Matrix.Int.get c 1 1)

let bool_matmul_prop =
  QCheck.Test.make ~name:"bool matmul agrees with naive" ~count:50
    QCheck.(pair (int_bound 1000) small_int)
    (fun (seed, _) ->
      let rng = Prng.create seed in
      let n = 1 + Prng.int rng 12 in
      let a = Matrix.Bool.init n n (fun _ _ -> Prng.bool rng) in
      let b = Matrix.Bool.init n n (fun _ _ -> Prng.bool rng) in
      let c = Matrix.Bool.mul a b in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let expect = ref false in
          for k = 0 to n - 1 do
            if Matrix.Bool.get a i k && Matrix.Bool.get b k j then expect := true
          done;
          if Matrix.Bool.get c i j <> !expect then ok := false
        done
      done;
      !ok)

let test_matrix_trace () =
  let a = Matrix.Int.init 3 3 (fun i j -> if i = j then i + 1 else 9) in
  check Alcotest.int "trace" 6 (Matrix.Int.trace a)

let test_binomial () =
  check Alcotest.int "C(5,2)" 10 (Combinat.binomial 5 2);
  check Alcotest.int "C(10,0)" 1 (Combinat.binomial 10 0);
  check Alcotest.int "C(10,10)" 1 (Combinat.binomial 10 10);
  check Alcotest.int "C(4,7)" 0 (Combinat.binomial 4 7);
  check Alcotest.int "C(20,10)" 184756 (Combinat.binomial 20 10)

let test_iter_subsets_count () =
  for n = 0 to 7 do
    for k = 0 to n do
      let c = ref 0 in
      Combinat.iter_subsets n k (fun _ -> incr c);
      check Alcotest.int (Printf.sprintf "count %d choose %d" n k)
        (Combinat.binomial n k) !c
    done
  done

let test_iter_subsets_sorted_distinct () =
  Combinat.iter_subsets 6 3 (fun s ->
      let l = Array.to_list s in
      check Alcotest.(list int) "sorted" (List.sort_uniq compare l) l)

let test_iter_tuples_count () =
  let c = ref 0 in
  Combinat.iter_tuples 3 4 (fun _ -> incr c);
  check Alcotest.int "3^4" 81 !c;
  let c = ref 0 in
  Combinat.iter_tuples 5 0 (fun _ -> incr c);
  check Alcotest.int "d^0 = 1" 1 !c

let test_power () =
  check Alcotest.int "2^10" 1024 (Combinat.power 2 10);
  check Alcotest.int "7^0" 1 (Combinat.power 7 0);
  check Alcotest.int "3^3" 27 (Combinat.power 3 3)

let test_fit_power () =
  (* y = 2 * x^3 *)
  let xs = [| 2.0; 4.0; 8.0; 16.0 |] in
  let ys = Array.map (fun x -> 2.0 *. (x ** 3.0)) xs in
  let e = Stopwatch.fit_power xs ys in
  Alcotest.(check bool) "exponent 3" true (abs_float (e -. 3.0) < 1e-6)

let test_fit_exponential () =
  (* y = 5 * 2^x *)
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let ys = Array.map (fun x -> 5.0 *. (2.0 ** x)) xs in
  let b = Stopwatch.fit_exponential xs ys in
  Alcotest.(check bool) "base 2" true (abs_float (b -. 2.0) < 1e-6)

let test_prng_split_independence () =
  let a = Prng.create 42 in
  let b = Prng.split a in
  (* advancing b does not change a's future stream *)
  let a2 = Prng.copy a in
  for _ = 1 to 50 do
    ignore (Prng.bits b)
  done;
  for _ = 1 to 50 do
    check Alcotest.int "a unaffected" (Prng.bits a2) (Prng.bits a)
  done

let test_matrix_bool_diagonal () =
  (* directed 2-cycle: A^2 has diagonal entries *)
  let a = Matrix.Bool.init 2 2 (fun i j -> i <> j) in
  Alcotest.(check bool) "hits" true (Matrix.Bool.mul_hits_diagonal a a);
  let b = Matrix.Bool.init 2 2 (fun i j -> i = 0 && j = 1) in
  Alcotest.(check bool) "no hit" false (Matrix.Bool.mul_hits_diagonal b b)

let test_matrix_transpose () =
  let m = Matrix.Bool.init 2 3 (fun i j -> i = 0 && j = 2) in
  let t = Matrix.Bool.transpose m in
  check Alcotest.(pair int int) "dims" (3, 2) (Matrix.Bool.dims t);
  Alcotest.(check bool) "entry moved" true (Matrix.Bool.get t 2 0)

let test_rows_intersect () =
  let m = Matrix.Bool.init 3 100 (fun i j -> (i = 0 && j = 77) || (i = 1 && j = 77) || (i = 2 && j = 5)) in
  Alcotest.(check bool) "share 77" true (Matrix.Bool.rows_intersect m 0 1);
  Alcotest.(check bool) "disjoint" false (Matrix.Bool.rows_intersect m 0 2)

let test_bits_popcount () =
  check Alcotest.int "popcount 0" 0 (Bits.popcount 0);
  check Alcotest.int "popcount 1" 1 (Bits.popcount 1);
  check Alcotest.int "popcount 0b1011" 3 (Bits.popcount 0b1011);
  (* the sign bit is an ordinary payload bit of the 63-bit pattern *)
  check Alcotest.int "popcount -1" 63 (Bits.popcount (-1));
  check Alcotest.int "popcount max_int" 62 (Bits.popcount max_int);
  check Alcotest.int "popcount min_int" 1 (Bits.popcount min_int);
  (* agrees with a bit loop on pseudorandom words *)
  let rng = Prng.create 99 in
  for _ = 1 to 200 do
    let x = Int64.to_int (Prng.next_int64 rng) in
    let slow = ref 0 in
    for b = 0 to 62 do
      if x land (1 lsl b) <> 0 then incr slow
    done;
    check Alcotest.int "popcount random" !slow (Bits.popcount x)
  done

let test_bits_ctz () =
  check Alcotest.int "ctz 1" 0 (Bits.ctz 1);
  check Alcotest.int "ctz 8" 3 (Bits.ctz 8);
  check Alcotest.int "ctz 12" 2 (Bits.ctz 12);
  check Alcotest.int "ctz min_int" 62 (Bits.ctz min_int);
  check Alcotest.int "ctz -1" 0 (Bits.ctz (-1));
  Alcotest.check_raises "ctz 0" (Invalid_argument "Bits.ctz: zero has no set bit")
    (fun () -> ignore (Bits.ctz 0))

let test_bits_words_for () =
  check Alcotest.int "0 bits" 0 (Bits.words_for ~bits:63 0);
  check Alcotest.int "1 bit" 1 (Bits.words_for ~bits:63 1);
  check Alcotest.int "63 bits" 1 (Bits.words_for ~bits:63 63);
  check Alcotest.int "64 bits" 2 (Bits.words_for ~bits:63 64);
  check Alcotest.int "62-bit words" 2 (Bits.words_for ~bits:62 124)

let test_matrix_mul_count () =
  (* popcount product = Int product on the 0/1 lift, rectangular and
     wider than one 63-bit word *)
  let rng = Prng.create 5 in
  let n = 9 and m = 130 and p = 7 in
  let a = Matrix.Bool.init n m (fun _ _ -> Prng.bool rng) in
  let b = Matrix.Bool.init m p (fun _ _ -> Prng.bool rng) in
  let c = Matrix.Bool.mul_count a b in
  let ai = Matrix.Int.init n m (fun i j -> if Matrix.Bool.get a i j then 1 else 0) in
  let bi = Matrix.Int.init m p (fun i j -> if Matrix.Bool.get b i j then 1 else 0) in
  let ci = Matrix.Int.mul ai bi in
  for i = 0 to n - 1 do
    for j = 0 to p - 1 do
      check Alcotest.int "entry" (Matrix.Int.get ci i j) (Matrix.Int.get c i j)
    done
  done

let test_matrix_all_set_equal () =
  let full = Matrix.Bool.init 3 70 (fun _ _ -> true) in
  Alcotest.(check bool) "all set" true (Matrix.Bool.all_set full);
  Matrix.Bool.set full 2 69 false;
  Alcotest.(check bool) "missing last bit" false (Matrix.Bool.all_set full);
  Alcotest.(check bool) "empty all set" true
    (Matrix.Bool.all_set (Matrix.Bool.create 0 5));
  let a = Matrix.Bool.init 2 64 (fun i j -> (i + j) mod 3 = 0) in
  let b = Matrix.Bool.init 2 64 (fun i j -> (i + j) mod 3 = 0) in
  Alcotest.(check bool) "equal" true (Matrix.Bool.equal a b);
  Matrix.Bool.set b 1 63 (not (Matrix.Bool.get b 1 63));
  Alcotest.(check bool) "not equal" false (Matrix.Bool.equal a b);
  Alcotest.(check bool) "dim mismatch" false
    (Matrix.Bool.equal a (Matrix.Bool.create 2 63))

let test_matrix_of_packed_rows () =
  (* 63-bit LSB-first packing: bit j of row i at word j/63, bit j mod 63 *)
  let rows = [| [| 0b101 |]; [| 0; 1 lsl 2 |] |] in
  let m = Matrix.Bool.of_packed_rows ~m:70 rows in
  check Alcotest.(pair int int) "dims" (2, 70) (Matrix.Bool.dims m);
  Alcotest.(check bool) "bit (0,0)" true (Matrix.Bool.get m 0 0);
  Alcotest.(check bool) "bit (0,1)" false (Matrix.Bool.get m 0 1);
  Alcotest.(check bool) "bit (0,2)" true (Matrix.Bool.get m 0 2);
  Alcotest.(check bool) "bit (1,65)" true (Matrix.Bool.get m 1 65);
  Alcotest.(check bool) "bit (1,64)" false (Matrix.Bool.get m 1 64)

let test_find_orthogonal_rows () =
  (* rows 0/1 of a intersect everything; a.(2) misses b.(1) *)
  let a = Matrix.Bool.init 3 80 (fun i j -> j mod 3 = i) in
  let b = Matrix.Bool.init 2 80 (fun i j -> if i = 0 then true else j mod 3 = 0)
  in
  check
    Alcotest.(option (pair int int))
    "witness" (Some (1, 1))
    (Matrix.Bool.find_orthogonal_rows a b);
  let c = Matrix.Bool.init 2 80 (fun _ _ -> true) in
  check
    Alcotest.(option (pair int int))
    "none" None
    (Matrix.Bool.find_orthogonal_rows a c);
  (* m = 0: every pair is vacuously orthogonal *)
  check
    Alcotest.(option (pair int int))
    "zero-width" (Some (0, 0))
    (Matrix.Bool.find_orthogonal_rows (Matrix.Bool.create 2 0)
       (Matrix.Bool.create 3 0));
  (* empty sides *)
  check
    Alcotest.(option (pair int int))
    "empty left" None
    (Matrix.Bool.find_orthogonal_rows (Matrix.Bool.create 0 10)
       (Matrix.Bool.create 3 10))

let test_find_subset () =
  let found = Combinat.find_subset 6 2 (fun s -> s.(0) + s.(1) = 7) in
  (match found with
  | Some s -> check Alcotest.(list int) "witness" [ 2; 5 ] (Array.to_list s)
  | None -> Alcotest.fail "2+5=7 exists");
  Alcotest.(check bool) "no witness" true
    (Combinat.find_subset 3 2 (fun s -> s.(0) + s.(1) > 100) = None)

let test_tabulate () =
  let s =
    Lb_util.Tabulate.render ~header:[ "name"; "n" ]
      [ [ "x"; "10" ]; [ "long-name"; "9" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.length lines >= 4)

(* --- Pool: the Domain work-queue behind the parallel join driver --- *)

let test_pool_covers_all_chunks () =
  Lb_util.Pool.with_pool 4 (fun p ->
      let hits = Array.make 97 0 in
      let m = Mutex.create () in
      Lb_util.Pool.run p ~chunks:97 (fun i ->
          Mutex.lock m;
          hits.(i) <- hits.(i) + 1;
          Mutex.unlock m);
      Array.iteri
        (fun i h ->
          check Alcotest.int (Printf.sprintf "chunk %d ran once" i) 1 h)
        hits)

let test_pool_reraises () =
  Lb_util.Pool.with_pool 2 (fun p ->
      (match
         Lb_util.Pool.run p ~chunks:16 (fun i ->
             if i = 7 then failwith "chunk 7")
       with
      | () -> Alcotest.fail "expected Failure"
      | exception Failure msg -> check Alcotest.string "message" "chunk 7" msg);
      (* the pool must still be usable after a failed job *)
      let total = Atomic.make 0 in
      Lb_util.Pool.run p ~chunks:10 (fun i ->
          ignore (Atomic.fetch_and_add total i));
      check Alcotest.int "sum after failure" 45 (Atomic.get total))

let test_pool_size_one_inline () =
  Lb_util.Pool.with_pool 1 (fun p ->
      check Alcotest.int "size" 1 (Lb_util.Pool.size p);
      let seen = ref [] in
      Lb_util.Pool.run p ~chunks:5 (fun i -> seen := i :: !seen);
      check Alcotest.(list int) "inline, in order" [ 4; 3; 2; 1; 0 ] !seen)

(* --- Lru --- *)

module Lru = Lb_util.Lru

let test_lru_basic () =
  let c = Lru.create 2 in
  check Alcotest.int "capacity" 2 (Lru.capacity c);
  check Alcotest.int "empty" 0 (Lru.length c);
  check Alcotest.(option int) "miss" None (Lru.find c "a");
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  check Alcotest.(option int) "hit a" (Some 1) (Lru.find c "a");
  check Alcotest.(option int) "hit b" (Some 2) (Lru.find c "b");
  check Alcotest.int "hits" 2 (Lru.hits c);
  check Alcotest.int "misses" 1 (Lru.misses c);
  Lru.put c "a" 10;
  check Alcotest.int "replace keeps length" 2 (Lru.length c);
  check Alcotest.(option int) "replaced value" (Some 10) (Lru.find c "a")

let test_lru_eviction_order () =
  let c = Lru.create 3 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "c" 3;
  (* touch "a": now "b" is least recently used *)
  ignore (Lru.find c "a");
  Lru.put c "d" 4;
  check Alcotest.int "one eviction" 1 (Lru.evictions c);
  check Alcotest.bool "lru binding evicted" false (Lru.mem c "b");
  check Alcotest.bool "recently used survives" true (Lru.mem c "a");
  check
    Alcotest.(list (pair string int))
    "most-to-least recent" [ ("d", 4); ("a", 1); ("c", 3) ] (Lru.to_list c)

let test_lru_remove_and_clear () =
  let c = Lru.create 4 in
  List.iter (fun (k, v) -> Lru.put c k v) [ ("a", 1); ("b", 2); ("c", 3) ];
  ignore (Lru.find c "a");
  ignore (Lru.find c "zzz");
  Lru.remove c "b";
  check Alcotest.int "length after remove" 2 (Lru.length c);
  check Alcotest.bool "removed" false (Lru.mem c "b");
  Lru.remove c "b" (* removing an absent key is a no-op *);
  Lru.clear c;
  check Alcotest.int "cleared" 0 (Lru.length c);
  check Alcotest.int "hits survive clear" 1 (Lru.hits c);
  check Alcotest.int "misses survive clear" 1 (Lru.misses c);
  check Alcotest.int "clear is not an eviction" 0 (Lru.evictions c);
  Lru.put c "x" 9;
  check Alcotest.(option int) "usable after clear" (Some 9) (Lru.find c "x")

let test_lru_capacity_one () =
  let c = Lru.create 1 in
  Lru.put c 1 "one";
  Lru.put c 2 "two";
  check Alcotest.int "length stays one" 1 (Lru.length c);
  check Alcotest.(option string) "latest wins" (Some "two") (Lru.find c 2);
  check Alcotest.int "evicted" 1 (Lru.evictions c);
  check Alcotest.bool "rejects capacity 0" true
    (try
       ignore (Lru.create 0);
       false
     with Invalid_argument _ -> true)

(* Model check against an association-list LRU: same finds, same
   contents, same recency order, under a random operation stream. *)
let test_lru_model () =
  let cap = 4 in
  let c = Lru.create cap in
  let model = ref [] (* most recent first, length <= cap *) in
  let rng = Prng.create 2026 in
  for _ = 1 to 2_000 do
    let k = Prng.int rng 8 in
    match Prng.int rng 3 with
    | 0 ->
        let v = Prng.int rng 1000 in
        model := (k, v) :: List.remove_assoc k !model;
        if List.length !model > cap then
          model := List.filteri (fun i _ -> i < cap) !model;
        Lru.put c k v
    | 1 ->
        let expected = List.assoc_opt k !model in
        if expected <> None then
          model := (k, List.assoc k !model) :: List.remove_assoc k !model;
        check Alcotest.(option int) "find agrees" expected (Lru.find c k)
    | _ ->
        model := List.remove_assoc k !model;
        Lru.remove c k
  done;
  check
    Alcotest.(list (pair int int))
    "final recency order" !model (Lru.to_list c)

(* Weighted entries: capacity bounds total weight, eviction still walks
   the recency tail, and a heavier-than-capacity binding is admitted
   alone. *)
let test_lru_weights () =
  let c = Lru.create 10 in
  Lru.put ~weight:4 c "a" 1;
  Lru.put ~weight:4 c "b" 2;
  check Alcotest.int "total weight" 8 (Lru.total_weight c);
  (* weight 4 would exceed 10: the LRU binding "a" goes, not "b" *)
  ignore (Lru.find c "b");
  Lru.put ~weight:4 c "c" 3;
  check Alcotest.bool "tail evicted first" false (Lru.mem c "a");
  check Alcotest.bool "recently used survives" true (Lru.mem c "b");
  check Alcotest.int "one eviction" 1 (Lru.evictions c);
  check Alcotest.int "total after eviction" 8 (Lru.total_weight c);
  (* a light entry still fits without evicting *)
  Lru.put c "d" 4;
  check Alcotest.int "unit default weight" 9 (Lru.total_weight c);
  check Alcotest.int "no extra eviction" 1 (Lru.evictions c);
  (* one heavy entry may evict several light ones, in recency order *)
  Lru.put ~weight:9 c "e" 5;
  check
    Alcotest.(list (pair string int))
    "evicts from the tail until it fits" [ ("e", 5); ("d", 4) ]
    (Lru.to_list c);
  check Alcotest.int "two more evictions" 3 (Lru.evictions c);
  (* replacing a binding at a new weight re-balances *)
  Lru.put ~weight:1 c "e" 50;
  check Alcotest.int "re-weighted total" 2 (Lru.total_weight c);
  (* heavier than the whole cache: admitted alone *)
  Lru.put ~weight:99 c "huge" 6;
  check Alcotest.int "alone" 1 (Lru.length c);
  check Alcotest.int "overweight admitted" 99 (Lru.total_weight c);
  check Alcotest.(option int) "and readable" (Some 6) (Lru.find c "huge");
  check Alcotest.bool "rejects weight 0" true
    (try
       Lru.put ~weight:0 c "z" 0;
       false
     with Invalid_argument _ -> true)

(* --- Exec: context building and legacy-argument resolution --- *)

let test_exec_default_and_builders () =
  check Alcotest.bool "default has no pool" true (Exec.default.Exec.pool = None);
  check Alcotest.bool "default has no budget" true
    (Exec.default.Exec.budget = None);
  check Alcotest.bool "default metrics disabled" false
    (Metrics.is_enabled Exec.default.Exec.metrics);
  let same_pool p = function Some p' -> p' == p | None -> false in
  let same_budget b = function Some b' -> b' == b | None -> false in
  let b = Budget.create ~ticks:10 () in
  let m = Metrics.create () in
  Pool.with_pool 2 (fun pool ->
      let ctx =
        Exec.(default |> with_pool pool |> with_budget b |> with_metrics m)
      in
      check Alcotest.bool "with_pool sets pool" true
        (same_pool pool ctx.Exec.pool);
      check Alcotest.bool "with_budget sets budget" true
        (same_budget b ctx.Exec.budget);
      check Alcotest.bool "with_metrics sets metrics" true
        (ctx.Exec.metrics == m);
      let made = Exec.make ~pool ~budget:b ~metrics:m () in
      check Alcotest.bool "make agrees with builders" true
        (same_pool pool made.Exec.pool
        && same_budget b made.Exec.budget
        && made.Exec.metrics == m))

let test_exec_resolve_precedence () =
  let same_budget b = function Some b' -> b' == b | None -> false in
  (* no ctx, no legacy args: the historical default *)
  let r = Exec.resolve () in
  check Alcotest.bool "bare resolve is default" true
    (r.Exec.pool = None && r.Exec.budget = None
    && not (Metrics.is_enabled r.Exec.metrics));
  (* ctx fields flow through when no legacy argument is given *)
  let b_ctx = Budget.create ~ticks:5 () in
  let m_ctx = Metrics.create () in
  let ctx = Exec.make ~budget:b_ctx ~metrics:m_ctx () in
  let r = Exec.resolve ~ctx () in
  check Alcotest.bool "ctx budget flows through" true
    (same_budget b_ctx r.Exec.budget);
  check Alcotest.bool "ctx metrics flow through" true (r.Exec.metrics == m_ctx);
  (* an explicit legacy argument overrides the ctx field, others keep it *)
  let b_arg = Budget.create ~ticks:99 () in
  let r = Exec.resolve ~ctx ~budget:b_arg () in
  check Alcotest.bool "explicit budget wins over ctx" true
    (same_budget b_arg r.Exec.budget);
  check Alcotest.bool "untouched field kept from ctx" true
    (r.Exec.metrics == m_ctx);
  let m_arg = Metrics.create () in
  let r = Exec.resolve ~ctx ~metrics:m_arg () in
  check Alcotest.bool "explicit metrics win over ctx" true
    (r.Exec.metrics == m_arg);
  check Alcotest.bool "budget still from ctx" true
    (same_budget b_ctx r.Exec.budget)

let test_exec_resolve_in_solver () =
  (* the ctx contract, observed end to end: the same solver entry point
     records into whichever metrics sink its context carries, whether
     the context is built by composition (default |> with_metrics) or
     in one shot (Exec.make), and the two are indistinguishable *)
  let db =
    Lb_relalg.Database.of_list
      [ ("E", Lb_relalg.Relation.make [| "u"; "v" |]
            [ [| 1; 2 |]; [| 2; 3 |]; [| 3; 1 |] ]) ]
  in
  let q = Lb_relalg.Query.parse "E(x,y), E(y,z), E(z,x)" in
  let via_compose = Metrics.create () in
  let n1 =
    Lb_relalg.Generic_join.count
      ~ctx:Exec.(default |> with_metrics via_compose)
      db q
  in
  let via_make = Metrics.create () in
  let n2 =
    Lb_relalg.Generic_join.count ~ctx:(Exec.make ~metrics:via_make ()) db q
  in
  let untouched = Metrics.create () in
  let n3 =
    Lb_relalg.Generic_join.count
      ~ctx:(Exec.make ~metrics:(Metrics.create ()) ())
      db q
  in
  check Alcotest.int "same answer" n1 n2;
  check Alcotest.int "same answer (fresh sink)" n1 n3;
  let builds m = Metrics.find_counter m "generic_join.trie_builds" in
  check Alcotest.(option int) "composed sink recorded" (Some 1)
    (builds via_compose);
  check Alcotest.(option int) "Exec.make sink recorded" (Some 1)
    (builds via_make);
  check Alcotest.(option int) "unrelated sink untouched" None
    (builds untouched)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng rejects bad bound" `Quick test_prng_int_rejects;
    Alcotest.test_case "prng sample" `Quick test_prng_sample;
    Alcotest.test_case "prng shuffle permutation" `Quick
      test_prng_shuffle_permutation;
    Alcotest.test_case "prng bernoulli frequency" `Quick
      test_prng_bernoulli_frequency;
    QCheck_alcotest.to_alcotest bitset_model_prop;
    Alcotest.test_case "bitset fill/clear" `Quick test_bitset_fill_clear;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "bitset choose" `Quick test_bitset_choose;
    Alcotest.test_case "union find" `Quick test_union_find;
    Alcotest.test_case "int matmul" `Quick test_matrix_int_mul;
    QCheck_alcotest.to_alcotest bool_matmul_prop;
    Alcotest.test_case "matrix trace" `Quick test_matrix_trace;
    Alcotest.test_case "binomial" `Quick test_binomial;
    Alcotest.test_case "subset count" `Quick test_iter_subsets_count;
    Alcotest.test_case "subsets sorted" `Quick test_iter_subsets_sorted_distinct;
    Alcotest.test_case "tuple count" `Quick test_iter_tuples_count;
    Alcotest.test_case "power" `Quick test_power;
    Alcotest.test_case "fit power" `Quick test_fit_power;
    Alcotest.test_case "fit exponential" `Quick test_fit_exponential;
    Alcotest.test_case "prng split independence" `Quick test_prng_split_independence;
    Alcotest.test_case "bool matmul diagonal" `Quick test_matrix_bool_diagonal;
    Alcotest.test_case "bool transpose" `Quick test_matrix_transpose;
    Alcotest.test_case "rows intersect" `Quick test_rows_intersect;
    Alcotest.test_case "bits popcount" `Quick test_bits_popcount;
    Alcotest.test_case "bits ctz" `Quick test_bits_ctz;
    Alcotest.test_case "bits words_for" `Quick test_bits_words_for;
    Alcotest.test_case "bool mul_count vs int mul" `Quick
      test_matrix_mul_count;
    Alcotest.test_case "bool all_set / equal" `Quick test_matrix_all_set_equal;
    Alcotest.test_case "bool of_packed_rows" `Quick test_matrix_of_packed_rows;
    Alcotest.test_case "find orthogonal rows" `Quick test_find_orthogonal_rows;
    Alcotest.test_case "find subset" `Quick test_find_subset;
    Alcotest.test_case "tabulate" `Quick test_tabulate;
    Alcotest.test_case "pool covers all chunks" `Quick
      test_pool_covers_all_chunks;
    Alcotest.test_case "pool re-raises chunk failure" `Quick test_pool_reraises;
    Alcotest.test_case "pool of one runs inline" `Quick
      test_pool_size_one_inline;
    Alcotest.test_case "lru basic" `Quick test_lru_basic;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru remove and clear" `Quick test_lru_remove_and_clear;
    Alcotest.test_case "lru capacity one" `Quick test_lru_capacity_one;
    Alcotest.test_case "lru model check" `Quick test_lru_model;
    Alcotest.test_case "lru weighted eviction" `Quick test_lru_weights;
    Alcotest.test_case "exec default and builders" `Quick
      test_exec_default_and_builders;
    Alcotest.test_case "exec resolve precedence" `Quick
      test_exec_resolve_precedence;
    Alcotest.test_case "exec resolve observed through a solver" `Quick
      test_exec_resolve_in_solver;
  ]
