(* Aggregate test runner: one alcotest suite per library. *)

let () =
  Alcotest.run "lowerbounds"
    [
      ("util", Test_util.suite);
      ("lp", Test_lp.suite);
      ("graph", Test_graph.suite);
      ("hypergraph", Test_hypergraph.suite);
      ("sat", Test_sat.suite);
      ("structure", Test_structure.suite);
      ("relalg", Test_relalg.suite);
      ("trie", Test_trie.suite);
      ("column", Test_column.suite);
      ("join_engine", Test_join_engine.suite);
      ("compile", Test_compile.suite);
      ("csp", Test_csp.suite);
      ("reductions", Test_reductions.suite);
      ("colsub", Test_colsub.suite);
      ("finegrained", Test_finegrained.suite);
      ("core", Test_core.suite);
      ("extensions", Test_extensions.suite);
      ("polymorphism", Test_polymorphism.suite);
      ("integration", Test_integration.suite);
      ("budget", Test_budget.suite);
      ("service", Test_service.suite);
      ("ivm", Test_ivm.suite);
      ("property", Test_property.suite);
    ]
