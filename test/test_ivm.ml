(* Tests for incremental view maintenance and the durable catalog.

   - Delta-trie differential: random insert/delete batch sequences
     applied through Delta_trie.apply must leave the trie
     indistinguishable - materialized rows, live counts, membership,
     and full trie navigation (iter_keys/narrow/seek at every depth) -
     from a trie rebuilt from scratch over the surviving rows, with or
     without compaction.
   - Catalog differential: random load/insert/delete/drop streams
     against a naive set-semantics oracle; effective-row reports,
     per-relation versions, and dump/restore round-trips must agree.
   - Server IVM differential: the same random query/write session run
     against IVM-maintained servers under every driver (sequential,
     pooled, sharded, interpreted) and an oracle server with IVM off
     must produce byte-identical answers, and maintenance must
     actually fire (serve.ivm.maintained > 0).
   - WAL fault injection: logs truncated at every record boundary, torn
     mid-record, and CRC/length/payload-corrupted at every record must
     replay to exactly the longest valid prefix, never raise, and be
     repairable in place.
   - Kill-and-restart: a server abandoned without shutdown must come
     back from --data-dir state with the same relations and a warm
     result cache serving byte-identical answers, even when the WAL
     tail was corrupted after the crash. *)

module Json = Lb_service.Json
module Protocol = Lb_service.Protocol
module Catalog = Lb_service.Catalog
module Server = Lb_service.Server
module Wal = Lb_service.Wal
module Ivm = Lb_service.Ivm
module Q = Lb_relalg.Query
module R = Lb_relalg.Relation
module Db = Lb_relalg.Database
module Delta_trie = Lb_relalg.Delta_trie
module Prng = Lb_util.Prng
module Metrics = Lb_util.Metrics
module Pool = Lb_util.Pool

let check = Alcotest.check

let rounds =
  match int_of_string_opt (Sys.getenv "LBT_PROP_COUNT") with
  | Some n when n > 0 -> n
  | Some _ | None | (exception Not_found) -> 30

(* --- row plumbing --- *)

let sorted_distinct rows =
  let a = Array.of_list rows in
  Array.sort compare a;
  let out = ref [] in
  Array.iter
    (fun r ->
      match !out with h :: _ when compare h r = 0 -> () | _ -> out := r :: !out)
    a;
  Array.of_list (List.rev !out)

let rows_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> compare x y = 0) a b

let show_rows rows =
  String.concat ";"
    (List.map
       (fun r ->
         "[" ^ String.concat "," (List.map string_of_int (Array.to_list r)) ^ "]")
       (Array.to_list rows))

let check_rows ctxt expected got =
  if not (rows_equal expected got) then
    Alcotest.failf "%s: expected {%s} got {%s}" ctxt (show_rows expected)
      (show_rows got)

let random_row rng width dom = Array.init width (fun _ -> Prng.int rng dom)

let random_rows rng ~width ~n ~dom = List.init n (fun _ -> random_row rng width dom)

(* Set-semantics oracle for one write batch, deletes first (the
   Delta_trie.apply order). *)
let oracle_apply live ~inserts ~deletes =
  let tbl = Hashtbl.create 64 in
  Array.iter (fun r -> Hashtbl.replace tbl (Array.to_list r) r) live;
  List.iter (fun r -> Hashtbl.remove tbl (Array.to_list r)) deletes;
  List.iter
    (fun r ->
      if not (Hashtbl.mem tbl (Array.to_list r)) then
        Hashtbl.replace tbl (Array.to_list r) r)
    inserts;
  sorted_distinct (Hashtbl.fold (fun _ r acc -> r :: acc) tbl [])

(* --- delta-trie differential --- *)

(* Walk two tries in lockstep and require identical live keys, live
   counts, and seek results at every depth. *)
let rec check_navigation ctxt dt fresh ~depth ~width node_dt node_fresh rng =
  check Alcotest.int
    (ctxt ^ ": node_live")
    (Delta_trie.node_live fresh node_fresh)
    (Delta_trie.node_live dt node_dt);
  if depth < width then begin
    let keys_of t node =
      let acc = ref [] in
      Delta_trie.iter_keys t ~depth node (fun k child ->
          acc := (k, child) :: !acc);
      List.rev !acc
    in
    let ks_dt = keys_of dt node_dt and ks_fresh = keys_of fresh node_fresh in
    check
      Alcotest.(list int)
      (Printf.sprintf "%s: keys at depth %d" ctxt depth)
      (List.map fst ks_fresh) (List.map fst ks_dt);
    (* seek: probe below, between, and above the key range *)
    let probes =
      match ks_fresh with
      | [] -> [ 0; 1 ]
      | ks ->
          let lo = fst (List.hd ks) and hi = fst (List.nth ks (List.length ks - 1)) in
          [ lo - 1; lo; (lo + hi) / 2; hi; hi + 1; Prng.int rng (hi + 2) ]
    in
    List.iter
      (fun v ->
        let key = function None -> None | Some (k, _) -> Some k in
        check
          Alcotest.(option int)
          (Printf.sprintf "%s: seek %d at depth %d" ctxt v depth)
          (key (Delta_trie.seek fresh ~depth node_fresh v))
          (key (Delta_trie.seek dt ~depth node_dt v)))
      probes;
    (* narrow on a present and an absent key *)
    (match ks_fresh with
    | (k, _) :: _ ->
        check Alcotest.bool
          (Printf.sprintf "%s: narrow hit at depth %d" ctxt depth)
          true
          (Delta_trie.narrow dt ~depth node_dt k <> None)
    | [] -> ());
    List.iter2
      (fun (_, child_dt) (_, child_fresh) ->
        check_navigation ctxt dt fresh ~depth:(depth + 1) ~width child_dt
          child_fresh rng)
      ks_dt ks_fresh
  end

let check_trie_state ctxt dt oracle attrs rng =
  let width = Array.length attrs in
  check_rows (ctxt ^ ": materialize") oracle (Delta_trie.materialize dt);
  check Alcotest.int (ctxt ^ ": live_rows") (Array.length oracle)
    (Delta_trie.live_rows dt);
  let fresh = Delta_trie.of_relation (R.of_sorted_distinct attrs oracle) in
  check_navigation ctxt dt fresh ~depth:0 ~width (Delta_trie.root dt)
    (Delta_trie.root fresh) rng;
  (* membership: every live row, plus random probes *)
  Array.iter
    (fun r ->
      check Alcotest.bool (ctxt ^ ": mem live") true (Delta_trie.mem dt r))
    oracle;
  for _ = 1 to 8 do
    let probe = random_row rng width 6 in
    check Alcotest.bool (ctxt ^ ": mem probe")
      (Array.exists (fun r -> compare r probe = 0) oracle)
      (Delta_trie.mem dt probe)
  done

let test_delta_trie_differential () =
  for round = 1 to rounds do
    let rng = Prng.create (9_100 + round) in
    let width = 1 + Prng.int rng 3 in
    let attrs = Array.init width (fun i -> Printf.sprintf "a%d" i) in
    let dom = 2 + Prng.int rng 5 in
    let base_rows = random_rows rng ~width ~n:(Prng.int rng 30) ~dom in
    let auto_compact = Prng.bool rng in
    let dt =
      ref
        (Delta_trie.of_relation ~min_compact:4 (R.make attrs base_rows))
    in
    let oracle = ref (sorted_distinct base_rows) in
    let steps = 2 + Prng.int rng 6 in
    for step = 1 to steps do
      let inserts = random_rows rng ~width ~n:(Prng.int rng 8) ~dom in
      let deletes =
        (* half fresh rows, half rows sampled from the live set so
           deletes actually hit *)
        random_rows rng ~width ~n:(Prng.int rng 4) ~dom
        @ (if Array.length !oracle = 0 then []
           else
             List.init (Prng.int rng 4) (fun _ ->
                 !oracle.(Prng.int rng (Array.length !oracle))))
      in
      let before = !oracle in
      let after = oracle_apply before ~inserts ~deletes in
      let applied = Delta_trie.apply ~auto_compact !dt ~inserts ~deletes in
      let ctxt = Printf.sprintf "round %d step %d" round step in
      check_rows (ctxt ^ ": added") (Ivm.diff_rows after before) applied.added;
      check_rows (ctxt ^ ": removed") (Ivm.diff_rows before after)
        applied.removed;
      dt := applied.dt;
      oracle := after;
      check_trie_state ctxt !dt !oracle attrs rng;
      (* snapshot isolation: the pre-batch value still answers for the
         pre-batch rows *)
      if step = 1 then
        check Alcotest.int (ctxt ^ ": old value untouched")
          (Array.length before)
          (Delta_trie.live_rows
             (Delta_trie.of_relation (R.of_sorted_distinct attrs before)))
    done;
    (* explicit compaction folds every side away without changing
       content *)
    let compacted = Delta_trie.compact !dt in
    check Alcotest.int "compact: no sides" 0 (Delta_trie.side_count compacted);
    check Alcotest.int "compact: no delta rows" 0
      (Delta_trie.delta_rows compacted);
    check_rows "compact: materialize" !oracle
      (Delta_trie.materialize compacted)
  done

(* --- catalog differential --- *)

let test_catalog_differential () =
  let names = [| "R"; "S"; "T" |] in
  for round = 1 to rounds do
    let rng = Prng.create (9_400 + round) in
    let cat = Catalog.create () in
    let oracle : (string, string array * int array array) Hashtbl.t =
      Hashtbl.create 4
    in
    let versions : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let global = ref 0 in
    let bump name =
      incr global;
      Hashtbl.replace versions name
        (1 + Option.value ~default:0 (Hashtbl.find_opt versions name))
    in
    for step = 1 to 16 do
      let name = names.(Prng.int rng (Array.length names)) in
      let ctxt = Printf.sprintf "round %d step %d %s" round step name in
      let width = 2 in
      let dom = 4 in
      (match Prng.int rng 4 with
      | 0 ->
          let attrs = [| "u"; "v" |] in
          let tuples = random_rows rng ~width ~n:(Prng.int rng 10) ~dom in
          (match Catalog.load cat ~name ~attrs tuples with
          | Ok card ->
              bump name;
              let rows = sorted_distinct tuples in
              Hashtbl.replace oracle name (attrs, rows);
              check Alcotest.int (ctxt ^ ": load card") (Array.length rows)
                card
          | Error msg -> Alcotest.failf "%s: load failed: %s" ctxt msg)
      | 1 when Hashtbl.mem oracle name ->
          let attrs, old_rows = Hashtbl.find oracle name in
          let tuples = random_rows rng ~width ~n:(Prng.int rng 6) ~dom in
          (match Catalog.insert cat ~name tuples with
          | Ok (card, added) ->
              bump name;
              let rows = oracle_apply old_rows ~inserts:tuples ~deletes:[] in
              Hashtbl.replace oracle name (attrs, rows);
              check Alcotest.int (ctxt ^ ": insert card") (Array.length rows)
                card;
              check_rows (ctxt ^ ": effective added")
                (Ivm.diff_rows rows old_rows)
                added
          | Error msg -> Alcotest.failf "%s: insert failed: %s" ctxt msg)
      | 2 when Hashtbl.mem oracle name ->
          let attrs, old_rows = Hashtbl.find oracle name in
          let tuples =
            random_rows rng ~width ~n:(Prng.int rng 3) ~dom
            @ (if Array.length old_rows = 0 then []
               else
                 List.init (Prng.int rng 3) (fun _ ->
                     old_rows.(Prng.int rng (Array.length old_rows))))
          in
          (match Catalog.delete cat ~name tuples with
          | Ok (card, removed) ->
              bump name;
              let rows = oracle_apply old_rows ~inserts:[] ~deletes:tuples in
              Hashtbl.replace oracle name (attrs, rows);
              check Alcotest.int (ctxt ^ ": delete card") (Array.length rows)
                card;
              check_rows (ctxt ^ ": effective removed")
                (Ivm.diff_rows old_rows rows)
                removed
          | Error msg -> Alcotest.failf "%s: delete failed: %s" ctxt msg)
      | 3 when Hashtbl.mem oracle name && Prng.bernoulli rng 0.3 ->
          (match Catalog.drop cat ~name with
          | Ok () ->
              bump name;
              Hashtbl.remove oracle name
          | Error msg -> Alcotest.failf "%s: drop failed: %s" ctxt msg)
      | _ -> ());
      (* full-state comparison after every step *)
      check Alcotest.int (ctxt ^ ": global version") !global
        (Catalog.version cat);
      let expected_summary =
        Hashtbl.fold
          (fun n (_, rows) acc -> (n, Array.length rows) :: acc)
          oracle []
        |> List.sort compare
      in
      check
        Alcotest.(list (pair string int))
        (ctxt ^ ": summary") expected_summary (Catalog.summary cat);
      let db = Catalog.database cat in
      Hashtbl.iter
        (fun n (attrs, rows) ->
          let rel = Db.find db n in
          check
            Alcotest.(array string)
            (ctxt ^ ": attrs") attrs (R.attrs rel);
          check_rows (ctxt ^ ": stored rows sorted") rows (R.tuples rel))
        oracle;
      Hashtbl.iter
        (fun n v ->
          check Alcotest.int
            (ctxt ^ ": rel_version " ^ n)
            v (Catalog.rel_version cat n))
        versions
    done;
    (* dump/restore round-trip preserves content and provenance *)
    let dump = Catalog.dump cat in
    let cat2 = Catalog.create () in
    ignore (Catalog.restore cat2 ~version:(Catalog.version cat) dump);
    check Alcotest.int "restore: version" (Catalog.version cat)
      (Catalog.version cat2);
    check
      Alcotest.(list (pair string int))
      "restore: summary" (Catalog.summary cat) (Catalog.summary cat2);
    List.iter
      (fun (n, _, _, _) ->
        check Alcotest.int ("restore: rel_version " ^ n)
          (Catalog.rel_version cat n)
          (Catalog.rel_version cat2 n);
        check_rows ("restore: rows " ^ n)
          (R.tuples (Db.find (Catalog.database cat) n))
          (R.tuples (Db.find (Catalog.database cat2) n)))
      dump
  done

(* --- server IVM differential across drivers --- *)

let field name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_string json)

let status json =
  match field "status" json with
  | Json.String s -> s
  | _ -> Alcotest.fail "non-string status"

let expect_ok ctxt json =
  if status json <> "ok" then
    Alcotest.failf "%s: expected ok, got %s" ctxt (Json.to_string json)

let cached_of json =
  match field "cached" json with
  | Json.Bool b -> b
  | _ -> Alcotest.fail "cached is not a bool"

let rows_bytes json = Json.to_string (field "rows" json)

let queries =
  [
    "E(x,y), E(y,z), E(z,x)";
    "E(x,y), E(y,z)";
    "E(x,y), F(y,z)";
    "E(x,y), E(y,x)";
    "F(x,y), F(y,z), F(z,x)";
  ]

let test_server_ivm_differential () =
  Pool.with_pool 2 (fun pool ->
      for round = 1 to max 3 (rounds / 6) do
        let rng = Prng.create (9_700 + round) in
        let mk config = Server.create ~config () in
        let ivm_servers =
          [
            ("default", mk Server.default_config);
            ("pooled", mk { Server.default_config with pool = Some pool });
            ("sharded", mk { Server.default_config with shards = 3 });
            ("interpreted", mk { Server.default_config with compile = false });
          ]
        in
        (* the oracle recomputes from scratch after every write *)
        let oracle = mk { Server.default_config with ivm = false } in
        let everyone = ("oracle", oracle) :: ivm_servers in
        let dom = 5 in
        let broadcast ctxt req =
          List.map
            (fun (label, srv) ->
              let reply = Server.handle srv req in
              expect_ok (ctxt ^ " on " ^ label) reply;
              (label, reply))
            everyone
        in
        let load name =
          let tuples =
            List.map Array.to_list
              (random_rows rng ~width:2 ~n:(8 + Prng.int rng 12) ~dom)
          in
          ignore
            (broadcast ("load " ^ name)
               (Protocol.Load { name; attrs = [ "u"; "v" ]; tuples }))
        in
        load "E";
        load "F";
        let compare_query ctxt text =
          let replies =
            broadcast ctxt
              (Protocol.Query { text; opts = Protocol.default_opts })
          in
          match replies with
          | (_, oracle_reply) :: rest ->
              let want = rows_bytes oracle_reply in
              List.iter
                (fun (label, reply) ->
                  check Alcotest.string
                    (ctxt ^ ": " ^ label ^ " rows byte-identical to recompute")
                    want (rows_bytes reply))
                rest
          | [] -> assert false
        in
        (* warm every cache, then interleave writes and queries *)
        List.iteri
          (fun i text -> compare_query (Printf.sprintf "warm %d" i) text)
          queries;
        for step = 1 to 14 do
          let ctxt = Printf.sprintf "round %d step %d" round step in
          (match Prng.int rng 5 with
          | 0 | 1 ->
              let name = if Prng.bool rng then "E" else "F" in
              let tuples =
                List.map Array.to_list
                  (random_rows rng ~width:2 ~n:(1 + Prng.int rng 3) ~dom)
              in
              ignore
                (broadcast
                   (ctxt ^ " insert " ^ name)
                   (Protocol.Insert { name; tuples }))
          | 2 ->
              let name = if Prng.bool rng then "E" else "F" in
              let tuples =
                List.map Array.to_list
                  (random_rows rng ~width:2 ~n:(1 + Prng.int rng 3) ~dom)
              in
              ignore
                (broadcast
                   (ctxt ^ " delete " ^ name)
                   (Protocol.Delete { name; tuples }))
          | _ -> ());
          let text = List.nth queries (Prng.int rng (List.length queries)) in
          compare_query (ctxt ^ " query") text
        done;
        (* a query repeated right after a write must be served from the
           maintained cache on every IVM server *)
        ignore
          (broadcast "final insert"
             (Protocol.Insert { name = "E"; tuples = [ [ 0; 1 ]; [ 1; 0 ] ] }));
        List.iter
          (fun (label, srv) ->
            let reply =
              Server.handle srv
                (Protocol.Query
                   { text = List.hd queries; opts = Protocol.default_opts })
            in
            expect_ok ("post-write query on " ^ label) reply;
            check Alcotest.bool
              (label ^ ": post-write answer came from the maintained cache")
              true (cached_of reply);
            let maintained =
              Option.value ~default:0
                (Metrics.find_counter (Server.metrics srv)
                   "serve.ivm.maintained")
            in
            if maintained = 0 then
              Alcotest.failf "%s: IVM never maintained an entry" label)
          ivm_servers;
        compare_query "final" (List.hd queries)
      done)

(* --- WAL fault injection --- *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let temp_path =
  let counter = ref 0 in
  fun stem ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lbt_%s_%d_%d" stem (Unix.getpid ()) !counter)

let sample_records =
  [
    Wal.Load
      { name = "E"; attrs = [| "u"; "v" |]; tuples = [ [| 1; 2 |]; [| 2; 3 |] ] };
    Wal.Insert { name = "E"; tuples = [ [| 3; 4 |] ] };
    Wal.Delete { name = "E"; tuples = [ [| 1; 2 |] ] };
    Wal.Load { name = "F"; attrs = [| "a" |]; tuples = [ [| 7 |] ] };
    Wal.Insert { name = "F"; tuples = [ [| 8 |]; [| 9 |] ] };
    Wal.Drop { name = "F" };
  ]

let check_prefix ctxt path ~want ~valid_bytes ~truncated =
  let r = Wal.replay path in
  check Alcotest.int (ctxt ^ ": record count") (List.length want)
    (List.length r.Wal.records);
  List.iter2
    (fun (v1, rec1) (v2, rec2) ->
      check Alcotest.int (ctxt ^ ": version") v1 v2;
      check Alcotest.bool (ctxt ^ ": record") true (compare rec1 rec2 = 0))
    want r.Wal.records;
  check Alcotest.int (ctxt ^ ": valid_bytes") valid_bytes r.Wal.valid_bytes;
  check Alcotest.bool (ctxt ^ ": truncated") truncated r.Wal.truncated

let test_wal_fault_injection () =
  let path = temp_path "wal" in
  if Sys.file_exists path then Sys.remove path;
  let w = Wal.open_writer path in
  List.iteri (fun i r -> Wal.append w ~version:(i + 1) r) sample_records;
  Wal.close w;
  let whole = read_file path in
  let stamped = List.mapi (fun i r -> (i + 1, r)) sample_records in
  let frames =
    List.map (fun (v, r) -> Wal.frame (Wal.encode ~version:v r)) stamped
  in
  (* cumulative offsets: offsets.(k) = end of record k's frame *)
  let offsets =
    let head = String.length Wal.magic in
    let off = ref head in
    let ends =
      List.map
        (fun f ->
          off := !off + String.length f;
          !off)
        frames
    in
    Array.of_list (head :: ends)
  in
  let n = List.length sample_records in
  check Alcotest.int "file length matches frames" offsets.(n)
    (String.length whole);
  check_prefix "clean log" path ~want:stamped ~valid_bytes:offsets.(n)
    ~truncated:false;
  let prefix k = List.filteri (fun i _ -> i < k) stamped in
  (* 1. truncation at every record boundary: a clean shorter log *)
  for k = 0 to n do
    write_file path (String.sub whole 0 offsets.(k));
    check_prefix
      (Printf.sprintf "boundary cut after %d" k)
      path ~want:(prefix k) ~valid_bytes:offsets.(k) ~truncated:false
  done;
  (* 2. torn tails: cuts strictly inside each frame lose only that
     record and flag the damage *)
  for k = 0 to n - 1 do
    let len = offsets.(k + 1) - offsets.(k) in
    List.iter
      (fun extra ->
        write_file path (String.sub whole 0 (offsets.(k) + extra));
        check_prefix
          (Printf.sprintf "torn cut %d+%d" k extra)
          path ~want:(prefix k) ~valid_bytes:offsets.(k) ~truncated:true)
      [ 1; len / 2; len - 1 ]
  done;
  (* header damage: no records, never a crash *)
  write_file path (String.sub whole 0 3);
  check_prefix "short header" path ~want:[] ~valid_bytes:0 ~truncated:true;
  write_file path ("XXXXXXXX" ^ String.sub whole 8 (offsets.(n) - 8));
  check_prefix "bad magic" path ~want:[] ~valid_bytes:0 ~truncated:true;
  (* 3. corruption inside every record: flip bytes in the length field,
     the payload, and the CRC - replay stops exactly before the damaged
     record *)
  for k = 0 to n - 1 do
    let flen = offsets.(k + 1) - offsets.(k) in
    List.iter
      (fun rel ->
        let b = Bytes.of_string whole in
        let pos = offsets.(k) + rel in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
        write_file path (Bytes.to_string b);
        let r = Wal.replay path in
        check Alcotest.int
          (Printf.sprintf "flip %d@%d: prefix" k rel)
          k
          (List.length r.Wal.records);
        check Alcotest.bool
          (Printf.sprintf "flip %d@%d: truncated" k rel)
          true r.Wal.truncated;
        check Alcotest.int
          (Printf.sprintf "flip %d@%d: valid_bytes" k rel)
          offsets.(k) r.Wal.valid_bytes)
      [ 0; 4 + ((flen - 8) / 2); flen - 1 ]
  done;
  (* 4. repair then append: the log is usable again and the new record
     lands after the surviving prefix *)
  let cut = 2 in
  write_file path (String.sub whole 0 (offsets.(cut) + 5));
  let damaged = Wal.replay path in
  check Alcotest.bool "repair target is damaged" true damaged.Wal.truncated;
  let w = Wal.open_writer path in
  Wal.repair w ~valid_bytes:damaged.Wal.valid_bytes;
  let extra = Wal.Insert { name = "E"; tuples = [ [| 42; 42 |] ] } in
  Wal.append w ~version:99 extra;
  Wal.close w;
  let r = Wal.replay path in
  check Alcotest.bool "repaired log is clean" false r.Wal.truncated;
  check Alcotest.int "repaired log length" (cut + 1)
    (List.length r.Wal.records);
  (match List.nth r.Wal.records cut with
  | 99, Wal.Insert { name = "E"; tuples = [ [| 42; 42 |] ] } -> ()
  | _ -> Alcotest.fail "appended record not recovered");
  Sys.remove path

(* --- kill-and-restart recovery --- *)

let temp_dir stem =
  let d = temp_path stem in
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let durable_config dir =
  { Server.default_config with data_dir = Some dir; snapshot_every = 100 }

let triangle = List.hd queries

let run_query srv =
  Server.handle srv (Protocol.Query { text = triangle; opts = Protocol.default_opts })

let counter srv name =
  Option.value ~default:0 (Metrics.find_counter (Server.metrics srv) name)

let test_kill_and_restart () =
  let dir = temp_dir "durable" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let rng = Prng.create 4242 in
      let tuples =
        List.map Array.to_list (random_rows rng ~width:2 ~n:24 ~dom:6)
      in
      (* session 1: load, warm the cache, checkpoint (persisting the
         cache), then write through IVM and vanish without shutdown -
         recovery must restore the snapshot's cache AND maintain it
         forward through the WAL records past the snapshot *)
      let s1 = Server.create ~config:(durable_config dir) () in
      expect_ok "load"
        (Server.handle s1
           (Protocol.Load { name = "E"; attrs = [ "u"; "v" ]; tuples }));
      expect_ok "first query" (run_query s1);
      expect_ok "mid-session checkpoint" (Server.handle s1 Protocol.Checkpoint);
      expect_ok "insert"
        (Server.handle s1
           (Protocol.Insert { name = "E"; tuples = [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] }));
      let last = run_query s1 in
      expect_ok "post-insert query" last;
      check Alcotest.bool "session 1 answer is IVM-maintained" true
        (cached_of last);
      let want_rows = rows_bytes last in
      let want_summary = Catalog.summary (Server.catalog s1) in
      let want_version = Catalog.version (Server.catalog s1) in
      (* session 2: recover from snapshot + WAL replay *)
      let s2 = Server.create ~config:(durable_config dir) () in
      check
        Alcotest.(list (pair string int))
        "relations survive the crash" want_summary
        (Catalog.summary (Server.catalog s2));
      check Alcotest.int "catalog version survives" want_version
        (Catalog.version (Server.catalog s2));
      check Alcotest.bool "WAL records were replayed" true
        (counter s2 "serve.wal.replayed" > 0);
      let replayed = run_query s2 in
      expect_ok "recovered query" replayed;
      check Alcotest.bool "recovered answer comes from the warm cache" true
        (cached_of replayed);
      check Alcotest.string "recovered answer byte-identical" want_rows
        (rows_bytes replayed);
      check Alcotest.bool "warm cache registered a hit" true
        (counter s2 "serve.cache.result.hits" > 0);
      (* checkpoint, then restart again: now recovery comes from the
         snapshot alone *)
      let ck = Server.handle s2 Protocol.Checkpoint in
      expect_ok "checkpoint" ck;
      check Alcotest.bool "snapshot written" true
        (counter s2 "serve.wal.snapshots" > 0);
      let s3 = Server.create ~config:(durable_config dir) () in
      check Alcotest.int "snapshot-only replay" 0
        (counter s3 "serve.wal.replayed");
      let from_snapshot = run_query s3 in
      check Alcotest.bool "snapshot restores the result cache" true
        (cached_of from_snapshot);
      check Alcotest.string "snapshot answer byte-identical" want_rows
        (rows_bytes from_snapshot);
      (* a write after recovery keeps maintaining the recovered cache *)
      expect_ok "post-recovery insert"
        (Server.handle s3
           (Protocol.Insert { name = "E"; tuples = [ [ 3; 4 ] ] }));
      let maintained = run_query s3 in
      expect_ok "post-recovery query" maintained;
      check Alcotest.bool "recovered entry is maintainable" true
        (cached_of maintained))

let test_restart_with_corrupt_tail () =
  let dir = temp_dir "torn" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s1 = Server.create ~config:(durable_config dir) () in
      expect_ok "load"
        (Server.handle s1
           (Protocol.Load
              {
                name = "E";
                attrs = [ "u"; "v" ];
                tuples = [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 1 ] ];
              }));
      expect_ok "insert"
        (Server.handle s1
           (Protocol.Insert { name = "E"; tuples = [ [ 4; 5 ] ] }));
      let want = rows_bytes (run_query s1) in
      (* the crash tears the last append mid-frame *)
      let wal = Filename.concat dir "wal.lbt" in
      let bytes = read_file wal in
      write_file wal (String.sub bytes 0 (String.length bytes - 3));
      let s2 = Server.create ~config:(durable_config dir) () in
      check Alcotest.bool "torn tail was repaired" true
        (counter s2 "serve.wal.repaired" > 0);
      (* the torn record (the insert) is lost; the load survives *)
      check
        Alcotest.(list (pair string int))
        "prefix state recovered"
        [ ("E", 3) ]
        (Catalog.summary (Server.catalog s2));
      (* the repaired log accepts new appends and the next restart sees
         them *)
      expect_ok "insert after repair"
        (Server.handle s2
           (Protocol.Insert { name = "E"; tuples = [ [ 4; 5 ] ] }));
      let healed = rows_bytes (run_query s2) in
      check Alcotest.string "replayed write restores the answer" want healed;
      let s3 = Server.create ~config:(durable_config dir) () in
      check
        Alcotest.(list (pair string int))
        "post-repair append is durable"
        [ ("E", 4) ]
        (Catalog.summary (Server.catalog s3));
      check Alcotest.string "final restart byte-identical" want
        (rows_bytes (run_query s3)))

let suite =
  [
    Alcotest.test_case "delta-trie differential vs rebuilt trie" `Quick
      test_delta_trie_differential;
    Alcotest.test_case "catalog differential + dump/restore round-trip"
      `Quick test_catalog_differential;
    Alcotest.test_case "server IVM differential across drivers" `Quick
      test_server_ivm_differential;
    Alcotest.test_case "WAL fault injection (truncate, tear, corrupt)"
      `Quick test_wal_fault_injection;
    Alcotest.test_case "kill-and-restart recovery with warm caches" `Quick
      test_kill_and_restart;
    Alcotest.test_case "restart over a corrupt WAL tail" `Quick
      test_restart_with_corrupt_tail;
  ]
