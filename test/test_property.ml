(* Property-based differential test layer.

   A dependency-free QuickCheck-style runner: every case is generated
   from an explicit SplitMix64 seed (Lb_util.Prng), failures print the
   seed and size needed to replay them, and shrinking regenerates the
   case from the same seed at halved sizes.  The properties are
   differential: each potentially-clever solver is compared against a
   brute-force oracle on random instances, and each reduction in
   lib/reductions round-trips through its [preserves] check.

   Iteration count: LBT_PROP_COUNT in the environment overrides the
   default (the [test-quick] dune alias sets a reduced count). *)

module Prng = Lb_util.Prng
module Cnf = Lb_sat.Cnf
module Dpll = Lb_sat.Dpll
module Csp = Lb_csp.Csp
module Gen = Lb_csp.Generators
module Graph_gen = Lb_graph.Generators
module Q = Lb_relalg.Query
module Rel = Lb_relalg.Relation
module Db = Lb_relalg.Database
module Gj = Lb_relalg.Generic_join
module Lf = Lb_relalg.Leapfrog

(* --- the runner --- *)

type 'a gen = Prng.t -> size:int -> 'a

let default_count =
  match int_of_string_opt (Sys.getenv "LBT_PROP_COUNT") with
  | Some n when n > 0 -> n
  | Some _ | None -> 30
  | exception Not_found -> 30

(* Deterministic per-case seeds: mixing the case index through a large
   odd constant keeps the streams independent without any global
   state. *)
let case_seed base i = base + (i * 0x1E3779B97F4A7C1)

(* [check ~name ~base gen show prop] runs [default_count] cases of
   [prop] on instances drawn from [gen] at sizes growing from [min_size]
   to [max_size].  On failure, the case is regenerated from its own seed
   at halved sizes for as long as it keeps failing, and the smallest
   failing (seed, size) pair is reported for replay. *)
let check ?(min_size = 2) ?(max_size = 10) ~name ~base (g : 'a gen) show prop =
  let count = default_count in
  for i = 0 to count - 1 do
    let seed = case_seed base i in
    let size = min_size + (i * (max_size - min_size + 1) / max 1 count) in
    let make size = g (Prng.create seed) ~size in
    let fails size =
      match prop (make size) with b -> not b | exception _ -> true
    in
    if fails size then begin
      (* shrink by halving the size, replaying the same seed *)
      let rec shrink s =
        let s' = s / 2 in
        if s' >= min_size && fails s' then shrink s' else s
      in
      let s = shrink size in
      Alcotest.failf
        "property %s falsified: seed=%d size=%d (replay: gen (Prng.create \
         %d) ~size:%d)\ninstance: %s"
        name seed s seed s
        (show (make s))
    end
  done

(* --- generators --- *)

(* Random k-SAT near the hard ratio; nvars tracks the size parameter so
   shrinking produces genuinely smaller formulas. *)
let gen_cnf ?(k = 3) ?(ratio = 4.0) () : Cnf.t gen =
 fun rng ~size ->
  let nvars = max k (min size 12) in
  let nclauses = max 1 (int_of_float (ratio *. float_of_int nvars)) in
  Cnf.random_ksat rng ~nvars ~nclauses ~k

(* Random binary CSP of bounded treewidth (partial k-tree primal
   graph). *)
let gen_csp ?(width = 2) ?(domain_size = 3) ?(plant = false) () :
    Csp.t gen =
 fun rng ~size ->
  let nvars = max (width + 1) (min size 8) in
  let csp, _, _ =
    Gen.bounded_treewidth rng ~nvars ~width ~domain_size ~density:0.5 ~plant
  in
  csp

(* Random conjunctive query + database: 2-5 binary atoms over a small
   attribute pool (shared variables make the joins non-trivial), with
   random relations over a domain scaled by [size]. *)
let gen_cq : (Db.t * Q.t) gen =
 fun rng ~size ->
  let nattrs = 2 + Prng.int rng 3 in
  let attrs = Array.init nattrs (fun i -> Printf.sprintf "x%d" i) in
  let natoms = 2 + Prng.int rng 3 in
  let dom = 2 + Prng.int rng (max 1 size) in
  let atoms = ref [] in
  let db = ref Db.empty in
  for a = 0 to natoms - 1 do
    let u = Prng.int rng nattrs in
    let v = (u + 1 + Prng.int rng (nattrs - 1)) mod nattrs in
    let name = Printf.sprintf "R%d" a in
    let ntuples = 1 + Prng.int rng (2 * dom) in
    let tuples =
      List.init ntuples (fun _ -> [| Prng.int rng dom; Prng.int rng dom |])
    in
    db := Db.add !db name (Rel.make [| "u"; "v" |] tuples);
    atoms := Q.atom name [| attrs.(u); attrs.(v) |] :: !atoms
  done;
  (!db, !atoms)

let gen_graph ?(p = 0.4) () : Lb_graph.Graph.t gen =
 fun rng ~size ->
  let n = max 3 (min size 9) in
  Graph_gen.gnp rng n p

let show_cnf f =
  Printf.sprintf "CNF(%d vars, %d clauses)" (Cnf.nvars f) (Cnf.clause_count f)

let show_csp c =
  Printf.sprintf "CSP(%d vars, |D|=%d, %d constraints)" (Csp.nvars c)
    (Csp.domain_size c) (Csp.constraint_count c)

let show_cq (_, q) = Q.to_string q

let show_graph g =
  Printf.sprintf "G(%d vertices, %d edges)" (Lb_graph.Graph.vertex_count g)
    (Lb_graph.Graph.edge_count g)

(* --- SAT oracles --- *)

let truth_table_sat f =
  let n = Cnf.nvars f in
  assert (n <= 16);
  let a = Array.make n false in
  let rec search v =
    if v = n then Cnf.satisfies f a
    else begin
      a.(v) <- false;
      search (v + 1)
      ||
      (a.(v) <- true;
       search (v + 1))
    end
  in
  search 0

let dpll_vs_truth_table () =
  check ~name:"dpll_vs_truth_table" ~base:0x11 ~max_size:12
    (gen_cnf ~k:3 ~ratio:4.2 ()) show_cnf (fun f ->
      match Dpll.solve f with
      | Some a -> Cnf.satisfies f a && truth_table_sat f
      | None -> not (truth_table_sat f))

let twosat_vs_dpll () =
  check ~name:"twosat_vs_dpll" ~base:0x12 ~max_size:12
    (gen_cnf ~k:2 ~ratio:1.8 ()) show_cnf (fun f ->
      match (Lb_sat.Two_sat.solve f, Dpll.solve f) with
      | Some a, Some _ -> Cnf.satisfies f a
      | None, None -> true
      | _ -> false)

let count_models_vs_truth_table () =
  check ~name:"count_models_vs_truth_table" ~base:0x13 ~max_size:8
    (gen_cnf ~k:3 ~ratio:3.0 ()) show_cnf (fun f ->
      let n = Cnf.nvars f in
      let brute = ref 0 in
      let a = Array.make n false in
      let rec go v =
        if v = n then (if Cnf.satisfies f a then incr brute)
        else begin
          a.(v) <- false;
          go (v + 1);
          a.(v) <- true;
          go (v + 1)
        end
      in
      go 0;
      Dpll.count_models f = !brute)

(* --- CSP oracles --- *)

let solver_vs_bruteforce () =
  check ~name:"csp_solver_vs_bruteforce" ~base:0x21 ~max_size:7
    (gen_csp ~width:2 ~domain_size:3 ()) show_csp (fun csp ->
      match (Lb_csp.Solver.solve csp, Csp.solve_bruteforce csp) with
      | Some a, Some _ -> Csp.satisfies csp a
      | None, None -> true
      | _ -> false)

let freuder_vs_bruteforce () =
  check ~name:"freuder_count_vs_bruteforce" ~base:0x22 ~max_size:7
    (gen_csp ~width:2 ~domain_size:3 ()) show_csp (fun csp ->
      Lb_csp.Freuder.count csp = Csp.count_bruteforce csp)

let freuder_nice_vs_bruteforce () =
  check ~name:"freuder_nice_count_vs_bruteforce" ~base:0x23 ~max_size:7
    (gen_csp ~width:2 ~domain_size:3 ()) show_csp (fun csp ->
      Lb_csp.Freuder_nice.count csp = Csp.count_bruteforce csp)

let solver_count_vs_bruteforce () =
  check ~name:"solver_count_vs_bruteforce" ~base:0x24 ~max_size:7
    (gen_csp ~width:3 ~domain_size:2 ()) show_csp (fun csp ->
      Lb_csp.Solver.count csp = Csp.count_bruteforce csp)

(* --- join engines vs the hash-join oracle --- *)

let joins_vs_oracle () =
  check ~name:"gj_lftj_vs_hash_join" ~base:0x31 ~max_size:8 gen_cq show_cq
    (fun (db, q) ->
      let oracle = Q.answer db q in
      let n = Rel.cardinality oracle in
      Gj.count db q = n && Lf.count db q = n
      && Rel.equal_modulo_order (Gj.answer db q) oracle
      && Rel.equal_modulo_order (Lf.answer db q) oracle)

let joins_parallel_vs_sequential () =
  check ~name:"gj_pool_vs_sequential" ~base:0x32 ~max_size:8 gen_cq
    show_cq (fun (db, q) ->
      let n = Gj.count db q in
      Lb_util.Pool.with_pool 2 (fun pool ->
          Gj.count ~ctx:(Lb_util.Exec.make ~pool ()) db q = n
          && Lf.count ~ctx:(Lb_util.Exec.make ~pool ()) db q = n))

(* --- reduction round-trips --- *)

let red_sat_to_3sat () =
  check ~name:"sat_to_3sat_preserves" ~base:0x41 ~max_size:10
    (gen_cnf ~k:3 ~ratio:3.5 ()) show_cnf Lb_reductions.Sat_to_3sat.preserves

let red_sat_to_csp () =
  check ~name:"sat_to_csp_preserves" ~base:0x42 ~max_size:10
    (gen_cnf ~k:3 ~ratio:3.5 ()) show_cnf Lb_reductions.Sat_to_csp.preserves

let red_sat_to_coloring () =
  check ~name:"sat_to_coloring_preserves" ~base:0x43 ~max_size:6
    (gen_cnf ~k:3 ~ratio:3.0 ()) show_cnf
    Lb_reductions.Sat_to_coloring.preserves

let red_sat_to_ov () =
  check ~name:"sat_to_ov_preserves" ~base:0x44 ~max_size:8
    (gen_cnf ~k:3 ~ratio:4.0 ()) show_cnf Lb_reductions.Sat_to_ov.preserves

let red_boolean_csp_to_2sat () =
  check ~name:"boolean_csp_to_2sat_preserves" ~base:0x45 ~max_size:8
    (gen_csp ~width:2 ~domain_size:2 ()) show_csp
    Lb_reductions.Boolean_csp_to_2sat.preserves

let red_clique_to_csp () =
  check ~name:"clique_to_csp_preserves" ~base:0x46 ~max_size:8
    (gen_graph ~p:0.5 ()) show_graph (fun g ->
      Lb_reductions.Clique_to_csp.preserves g 3)

let red_complement () =
  check ~name:"complement_preserves" ~base:0x47 ~max_size:9
    (gen_graph ~p:0.4 ()) show_graph (fun g ->
      Lb_reductions.Complement.preserves_clique_is g 3
      && Lb_reductions.Complement.preserves_is_vc g)

let red_domset_to_csp () =
  check ~name:"domset_to_csp_preserves" ~base:0x48 ~max_size:8
    (gen_graph ~p:0.35 ()) show_graph (fun g ->
      Lb_reductions.Domset_to_csp.preserves g ~t:2 ~g:1
      && Lb_reductions.Domset_to_csp.preserves g ~t:2 ~g:2)

let red_ov_to_diameter () =
  check ~name:"ov_to_diameter_preserves" ~base:0x49 ~max_size:8
    (fun rng ~size ->
      Lb_finegrained.Ov.random rng ~n:(max 2 (min size 8)) ~dim:6 ~p:0.5)
    (fun inst ->
      Printf.sprintf "OV(%d/side, dim %d)"
        (Array.length inst.Lb_finegrained.Ov.left)
        inst.Lb_finegrained.Ov.dim)
    (fun inst ->
      match Lb_reductions.Ov_to_diameter.preserves inst with
      | ok -> ok
      | exception Lb_reductions.Ov_to_diameter.Trivial_yes ->
          (* an all-zero vector is orthogonal to everything *)
          Lb_finegrained.Ov.solve inst <> None)

let red_special_csp () =
  check ~name:"special_csp_preserves" ~base:0x4a ~max_size:8
    (gen_graph ~p:0.5 ()) show_graph (fun g ->
      Lb_reductions.Special_csp.preserves g 3)

(* --- the matmul kernel layer --- *)

(* Random rectangular Bool matrix pair with dimensions crossing the
   63-bit word boundary (including 0 and 1): size scales the range up
   to ~160 so non-multiple-of-63 widths, sub-word and multi-word rows
   all occur.  Dispatch would never pick M4R at these sizes, so the
   property calls each kernel explicitly. *)
let gen_bool_mats : (Lb_util.Matrix.Bool.t * Lb_util.Matrix.Bool.t) gen =
 fun rng ~size ->
  let module B = Lb_util.Matrix.Bool in
  let dim () =
    match Prng.int rng 8 with
    | 0 -> 0
    | 1 -> 1
    | 2 -> 62 + Prng.int rng 4 (* straddle the word boundary *)
    | _ -> Prng.int rng (16 * size + 2)
  in
  let n = dim () and m = dim () and p = dim () in
  let density = 0.05 +. Prng.float rng 0.9 in
  let a = B.init n m (fun _ _ -> Prng.bernoulli rng density) in
  let b = B.init m p (fun _ _ -> Prng.bernoulli rng density) in
  (a, b)

let show_bool_mats (a, b) =
  let module B = Lb_util.Matrix.Bool in
  let an, am = B.dims a and bn, bm = B.dims b in
  Printf.sprintf "A %dx%d * B %dx%d" an am bn bm

(* All four product paths are bit-identical, and match a per-entry
   triple loop oracle. *)
let matmul_kernels_agree () =
  check ~name:"matmul_kernels_agree" ~base:0x51 ~max_size:10 gen_bool_mats
    show_bool_mats (fun (a, b) ->
      let module B = Lb_util.Matrix.Bool in
      let c = B.mul_naive a b in
      let cb = B.mul_blocked a b in
      let cm = B.mul_m4r a b in
      let cp =
        Lb_util.Pool.with_pool 2 (fun pool ->
            B.mul_m4r ~ctx:(Lb_util.Exec.make ~pool ()) a b)
      in
      let cbp =
        Lb_util.Pool.with_pool 2 (fun pool ->
            B.mul_blocked ~ctx:(Lb_util.Exec.make ~pool ()) a b)
      in
      let cd = B.mul a b in
      let n, m = B.dims a and _, p = B.dims b in
      let oracle_ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to p - 1 do
          let e = ref false in
          for k = 0 to m - 1 do
            if B.get a i k && B.get b k j then e := true
          done;
          if B.get c i j <> !e then oracle_ok := false
        done
      done;
      !oracle_ok && B.equal c cb && B.equal c cm && B.equal c cp
      && B.equal c cbp && B.equal c cd)

(* mul_count agrees with the Int product of the 0/1 lifts. *)
let mul_count_vs_int () =
  check ~name:"mul_count_vs_int" ~base:0x52 ~max_size:8 gen_bool_mats
    show_bool_mats (fun (a, b) ->
      let module B = Lb_util.Matrix.Bool in
      let module I = Lb_util.Matrix.Int in
      let c = B.mul_count a b in
      let n, m = B.dims a and _, p = B.dims b in
      let ai = I.init n m (fun i j -> if B.get a i j then 1 else 0) in
      let bi = I.init m p (fun i j -> if B.get b i j then 1 else 0) in
      let ci = I.mul ai bi in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to p - 1 do
          if I.get c i j <> I.get ci i j then ok := false
        done
      done;
      !ok)

(* The blocked OV route returns the same witness as the quadratic scan
   (row-major-first), sequentially and under a pool. *)
let gen_ov_instance : Lb_finegrained.Ov.instance gen =
 fun rng ~size ->
  let n = 1 + Prng.int rng (4 * size) in
  let dim = 1 + Prng.int rng 70 in
  (* p low enough that witnesses actually occur *)
  let p = 0.2 +. Prng.float rng 0.6 in
  Lb_finegrained.Ov.random rng ~n ~dim ~p

let show_ov inst =
  Printf.sprintf "OV n=%d dim=%d"
    (Array.length inst.Lb_finegrained.Ov.left)
    inst.Lb_finegrained.Ov.dim

let ov_blocked_vs_quadratic () =
  check ~name:"ov_blocked_vs_quadratic" ~base:0x53 ~max_size:12
    gen_ov_instance show_ov (fun inst ->
      let module Ov = Lb_finegrained.Ov in
      let reference = Ov.solve inst in
      Ov.solve_blocked inst = reference
      && Lb_util.Pool.with_pool 2 (fun pool ->
             let ctx = Lb_util.Exec.make ~pool () in
             Ov.solve_blocked ~ctx inst = reference))

(* --- sharded execution vs unsharded --- *)

module Shard = Lb_relalg.Shard
module Exec = Lb_util.Exec

let counters_list m =
  List.sort compare (Lb_util.Metrics.counters m)

(* For every k, the sharded drivers must reproduce the unsharded run
   bit-for-bit: same answer relation, same engine counters, same
   metrics deltas.  Exercised with and without a pool (the pool path
   also covers the unit merge order). *)
let sharded_bit_identical ?(ks = [ 1; 2; 3; 7 ]) (db, q) =
  let gj_ref = Gj.fresh_counters () in
  let gj_sink = Lb_util.Metrics.create () in
  let gj_ans = Gj.answer ~ctx:(Exec.make ~metrics:gj_sink ()) db q in
  ignore (Gj.count ~counters:gj_ref db q);
  let lf_ref = Lf.fresh_counters () in
  let lf_sink = Lb_util.Metrics.create () in
  let lf_ans = Lf.answer ~ctx:(Exec.make ~metrics:lf_sink ()) db q in
  ignore (Lf.count ~counters:lf_ref db q);
  List.for_all
    (fun k ->
      let gj_c = Gj.fresh_counters () in
      let gj_sk = Lb_util.Metrics.create () in
      let gj_shard =
        Gj.run_sharded
          ~ctx:(Exec.make ~metrics:gj_sk ())
          ~counters:gj_c ~shards:k db q
      in
      let lf_c = Lf.fresh_counters () in
      let lf_sk = Lb_util.Metrics.create () in
      let lf_shard =
        Lf.run_sharded
          ~ctx:(Exec.make ~metrics:lf_sk ())
          ~counters:lf_c ~shards:k db q
      in
      let pooled_equal =
        Lb_util.Pool.with_pool 2 (fun pool ->
            let pc = Gj.fresh_counters () in
            let n =
              Gj.count_sharded ~ctx:Exec.(default |> with_pool pool)
                ~counters:pc ~shards:k db q
            in
            n = gj_ref.Gj.emitted
            && pc.Gj.intersections = gj_ref.Gj.intersections
            &&
            let lc = Lf.fresh_counters () in
            let nl =
              Lf.count_sharded ~ctx:Exec.(default |> with_pool pool)
                ~counters:lc ~shards:k db q
            in
            nl = lf_ref.Lf.emitted && lc.Lf.seeks = lf_ref.Lf.seeks)
      in
      Rel.equal gj_shard gj_ans
      && gj_c.Gj.intersections = gj_ref.Gj.intersections
      && gj_c.Gj.emitted = gj_ref.Gj.emitted
      && counters_list gj_sk = counters_list gj_sink
      && Rel.equal lf_shard lf_ans
      && lf_c.Lf.seeks = lf_ref.Lf.seeks
      && lf_c.Lf.emitted = lf_ref.Lf.emitted
      && counters_list lf_sk = counters_list lf_sink
      && pooled_equal)
    ks

let sharded_vs_unsharded () =
  check ~name:"sharded_vs_unsharded" ~base:0x61 ~max_size:8 gen_cq show_cq
    (fun inst -> sharded_bit_identical inst)

(* Adversarial placement: every value drawn from a pool that hashes to
   shard 0 of k=3, so one shard carries all tuples and the others are
   empty - the skew split and the empty-shard streams must both cope. *)
let gen_cq_one_shard : (Db.t * Q.t) gen =
 fun rng ~size ->
  let k = 3 in
  let pool =
    (* values landing in shard 0; plenty exist below 10_000 *)
    let rec collect v acc n =
      if n = 0 then Array.of_list (List.rev acc)
      else if Shard.shard_of ~k v = 0 then collect (v + 1) (v :: acc) (n - 1)
      else collect (v + 1) acc n
    in
    collect 0 [] 64
  in
  let dom = 2 + Prng.int rng (max 1 size) in
  let pick () = pool.(Prng.int rng (min dom (Array.length pool))) in
  let atoms = [ "R"; "S"; "T" ] in
  let db = ref Db.empty in
  List.iter
    (fun name ->
      let ntuples = 1 + Prng.int rng (2 * dom) in
      let tuples = List.init ntuples (fun _ -> [| pick (); pick () |]) in
      db := Db.add !db name (Rel.make [| "u"; "v" |] tuples))
    atoms;
  ( !db,
    [
      Q.atom "R" [| "x"; "y" |];
      Q.atom "S" [| "y"; "z" |];
      Q.atom "T" [| "z"; "x" |];
    ] )

let sharded_one_shard_adversarial () =
  check ~name:"sharded_one_shard_adversarial" ~base:0x62 ~max_size:8
    gen_cq_one_shard show_cq
    (sharded_bit_identical ~ks:[ 3 ])

(* Skew: one heavy first-variable value with a fan-out past the heavy
   split threshold, so the depth-2 task expansion and the 2x-mean unit
   split both run. *)
let gen_cq_skew : (Db.t * Q.t) gen =
 fun rng ~size ->
  let heavy = 200 + (4 * size) in
  let hot = Prng.int rng 5 in
  let r =
    List.init heavy (fun i -> [| hot; i |])
    @ List.init 10 (fun i -> [| 5 + Prng.int rng 20; i |])
  in
  let s = List.init 40 (fun i -> [| i; Prng.int rng 30 |]) in
  let db =
    Db.of_list
      [
        ("R", Rel.make [| "u"; "v" |] r); ("S", Rel.make [| "u"; "v" |] s);
      ]
  in
  (db, [ Q.atom "R" [| "x"; "y" |]; Q.atom "S" [| "y"; "z" |] ])

let sharded_skew_split () =
  check ~name:"sharded_skew_split" ~base:0x63 ~max_size:8 gen_cq_skew show_cq
    (fun inst -> sharded_bit_identical inst)

(* Shard module laws: partition preserves content, co-partitions align,
   merge_sorted restores the relation. *)
let shard_partition_roundtrip () =
  check ~name:"shard_partition_roundtrip" ~base:0x64 ~max_size:10
    (fun rng ~size ->
      let n = 1 + Prng.int rng (8 * size) in
      let dom = 1 + Prng.int rng 50 in
      Rel.make [| "a"; "b" |]
        (List.init n (fun _ -> [| Prng.int rng dom; Prng.int rng dom |])))
    (fun r -> Printf.sprintf "Rel(%d tuples)" (Rel.cardinality r))
    (fun r ->
      List.for_all
        (fun k ->
          let parts = Shard.partition ~k ~attr:"a" r in
          Array.length parts = k
          && Rel.equal (Shard.merge_sorted parts) r
          && Array.to_list parts
             |> List.mapi (fun s p ->
                    Array.for_all
                      (fun t -> Shard.shard_of ~k t.(0) = s)
                      (Rel.tuples p))
             |> List.for_all Fun.id)
        [ 1; 2; 5 ])

(* The runner itself: a false property must fail, shrink to the minimum
   size, and report a replayable seed. *)
let runner_reports_failures () =
  let saw =
    try
      check ~name:"always_false" ~base:0x99 ~min_size:2 ~max_size:64
        (fun rng ~size -> size + Prng.int rng 1)
        string_of_int
        (fun _ -> false);
      None
    with e -> Some (Printexc.to_string e)
  in
  match saw with
  | None -> Alcotest.fail "false property went unreported"
  | Some msg ->
      Alcotest.(check bool) "reports a replay seed" true
        (let has sub =
           let n = String.length msg and m = String.length sub in
           let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
           go 0
         in
         has "seed=" && has "size=2")

let suite =
  [
    ("prop: runner reports failures", `Quick, runner_reports_failures);
    ("prop: DPLL vs truth table", `Quick, dpll_vs_truth_table);
    ("prop: 2SAT vs DPLL", `Quick, twosat_vs_dpll);
    ("prop: #models vs truth table", `Quick, count_models_vs_truth_table);
    ("prop: CSP solver vs brute force", `Quick, solver_vs_bruteforce);
    ("prop: Freuder DP vs brute force", `Quick, freuder_vs_bruteforce);
    ( "prop: nice-form DP vs brute force",
      `Quick,
      freuder_nice_vs_bruteforce );
    ("prop: solver count vs brute force", `Quick, solver_count_vs_bruteforce);
    ("prop: GJ/LFTJ vs hash join", `Quick, joins_vs_oracle);
    ("prop: pooled joins vs sequential", `Quick, joins_parallel_vs_sequential);
    ("prop: SAT->3SAT round trip", `Quick, red_sat_to_3sat);
    ("prop: SAT->CSP round trip", `Quick, red_sat_to_csp);
    ("prop: 3SAT->coloring round trip", `Quick, red_sat_to_coloring);
    ("prop: SAT->OV round trip", `Quick, red_sat_to_ov);
    ("prop: Boolean CSP->2SAT round trip", `Quick, red_boolean_csp_to_2sat);
    ("prop: clique->CSP round trip", `Quick, red_clique_to_csp);
    ("prop: complement equivalences", `Quick, red_complement);
    ("prop: domset->CSP round trip", `Quick, red_domset_to_csp);
    ("prop: OV->diameter round trip", `Quick, red_ov_to_diameter);
    ("prop: clique->special CSP round trip", `Quick, red_special_csp);
    ("prop: matmul kernels bit-identical", `Quick, matmul_kernels_agree);
    ("prop: mul_count vs Int product", `Quick, mul_count_vs_int);
    ("prop: OV blocked vs quadratic scan", `Quick, ov_blocked_vs_quadratic);
    ("prop: sharded joins bit-identical", `Quick, sharded_vs_unsharded);
    ( "prop: sharded all-tuples-one-shard",
      `Quick,
      sharded_one_shard_adversarial );
    ("prop: sharded skew split", `Quick, sharded_skew_split);
    ("prop: shard partition round trip", `Quick, shard_partition_roundtrip);
  ]
