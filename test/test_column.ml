(* Off-heap columnar storage layer: unit tests for Column and Arena,
   plus the seeded differential suite that pins the bit-identity gate
   of the storage swap - a Column-backed Trie / Delta_trie walked
   against an [int array]-based oracle on random data, including the
   gallop boundary cases (empty ranges, lo = hi, value past the end)
   and the mmap snapshot image round trip. *)

module Column = Lb_util.Column
module Arena = Lb_util.Arena
module Prng = Lb_util.Prng
module R = Lb_relalg.Relation
module Trie = Lb_relalg.Trie
module Delta_trie = Lb_relalg.Delta_trie
module Json = Lb_service.Json
module Snapshot = Lb_service.Snapshot

let check = Alcotest.check

let prop_count default =
  match Sys.getenv_opt "LBT_PROP_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* --- Column unit tests --- *)

let test_column_basics () =
  let c = Column.init 10 (fun i -> i * i) in
  check Alcotest.int "length" 10 (Column.length c);
  check Alcotest.int "get" 49 (Column.get c 7);
  Column.set c 7 (-1);
  check Alcotest.int "set" (-1) (Column.get c 7);
  check Alcotest.int "empty" 0 (Column.length Column.empty);
  let m = Column.make 4 3 in
  check Alcotest.(list int) "make" [ 3; 3; 3; 3 ] (Array.to_list (Column.to_array m));
  Column.fill m 0;
  check Alcotest.(list int) "fill" [ 0; 0; 0; 0 ] (Array.to_list (Column.to_array m))

let test_column_round_trip () =
  let a = [| 5; -3; 0; max_int; min_int; 42 |] in
  let c = Column.of_array a in
  check Alcotest.(list int) "of_array/to_array" (Array.to_list a)
    (Array.to_list (Column.to_array c));
  let d = Column.copy c in
  Column.set d 0 99;
  check Alcotest.int "copy is independent" 5 (Column.get c 0);
  Alcotest.(check bool) "equal" true (Column.equal c (Column.of_array a));
  Alcotest.(check bool) "not equal (element)" false (Column.equal c d);
  Alcotest.(check bool)
    "not equal (length)" false
    (Column.equal c (Column.sub c 0 3))

let test_column_sub_aliases () =
  let c = Column.init 8 (fun i -> i) in
  let v = Column.sub c 2 4 in
  check Alcotest.int "view length" 4 (Column.length v);
  check Alcotest.int "view offset" 2 (Column.get v 0);
  Column.set v 0 77;
  check Alcotest.int "view shares storage" 77 (Column.get c 2)

let test_column_blit () =
  let src = Column.init 6 (fun i -> 10 + i) in
  let dst = Column.make 6 0 in
  Column.blit ~src ~src_pos:1 ~dst ~dst_pos:3 ~len:3;
  check Alcotest.(list int) "blit" [ 0; 0; 0; 11; 12; 13 ]
    (Array.to_list (Column.to_array dst));
  (* len = 0 is a no-op, even at the very end of the column *)
  Column.blit ~src ~src_pos:6 ~dst ~dst_pos:6 ~len:0;
  (* overlapping blit within one column behaves like a memmove *)
  let c = Column.init 5 (fun i -> i) in
  Column.blit ~src:c ~src_pos:0 ~dst:c ~dst_pos:1 ~len:4;
  check Alcotest.(list int) "overlap" [ 0; 0; 1; 2; 3 ]
    (Array.to_list (Column.to_array c))

(* --- Arena unit tests --- *)

let test_arena_bump_and_release () =
  let a = Arena.create ~capacity:8 () in
  let m0 = Arena.mark a in
  let x = Arena.alloc a 3 in
  let y = Arena.alloc a 2 in
  check Alcotest.int "used" 5 (Arena.used a);
  Column.fill x 7;
  Column.fill y 9;
  check Alcotest.int "disjoint views (x)" 7 (Column.get x 2);
  check Alcotest.int "disjoint views (y)" 9 (Column.get y 0);
  Arena.release a m0;
  check Alcotest.int "released" 0 (Arena.used a)

let test_arena_growth_keeps_views () =
  let a = Arena.create ~capacity:4 () in
  let m0 = Arena.mark a in
  let x = Arena.alloc a 3 in
  Column.fill x 5;
  (* does not fit: the chunk is retired, not freed, so [x] stays valid *)
  let y = Arena.alloc a 100 in
  check Alcotest.int "grown" 1 (Arena.grown a);
  check Alcotest.int "old view intact" 5 (Column.get x 2);
  check Alcotest.int "new view sized" 100 (Column.length y);
  Alcotest.(check bool) "capacity covers both" true (Arena.capacity a >= 103);
  Arena.release a m0;
  check Alcotest.int "release drops retirees" 0 (Arena.used a);
  Arena.reset a;
  check Alcotest.int "reset keeps largest chunk only" 0 (Arena.used a)

let test_arena_invalid () =
  Alcotest.check_raises "negative alloc"
    (Invalid_argument "Arena.alloc: negative size") (fun () ->
      ignore (Arena.alloc (Arena.create ()) (-1)))

(* --- gallop boundary cases --- *)

let test_gallop_boundaries () =
  let col = Column.of_array [| 1; 3; 3; 5; 9 |] in
  let n = 5 in
  (* empty range: lo = hi anywhere, including 0 and n *)
  List.iter
    (fun i ->
      check Alcotest.int "geq empty" i (Trie.gallop_geq col i i 3);
      check Alcotest.int "gt empty" i (Trie.gallop_gt col i i 3))
    [ 0; 2; n ];
  (* value past the end of the range *)
  check Alcotest.int "geq past end" n (Trie.gallop_geq col 0 n 10);
  check Alcotest.int "gt past end" n (Trie.gallop_gt col 0 n 9);
  (* value below every key *)
  check Alcotest.int "geq below" 0 (Trie.gallop_geq col 0 n 0);
  check Alcotest.int "gt below" 0 (Trie.gallop_gt col 0 n 0);
  (* duplicates: geq finds the first, gt skips them all *)
  check Alcotest.int "geq dup" 1 (Trie.gallop_geq col 0 n 3);
  check Alcotest.int "gt dup" 3 (Trie.gallop_gt col 0 n 3);
  (* sub-range never looks outside [lo, hi) *)
  check Alcotest.int "geq windowed" 3 (Trie.gallop_geq col 3 4 2);
  check Alcotest.int "gt windowed" 4 (Trie.gallop_gt col 3 4 5)

(* --- differential properties: Column-backed structures vs oracles --- *)

let sorted_distinct rows =
  let arr = Array.of_list (List.map Array.copy rows) in
  Array.sort R.compare_tuples arr;
  Array.of_list
    (List.filteri
       (fun i r -> i = 0 || R.compare_tuples arr.(i - 1) r <> 0)
       (Array.to_list arr))

let random_rows rng ~n ~width ~dom =
  List.init n (fun _ -> Array.init width (fun _ -> Prng.int rng dom))

(* Full trie walk (iter_keys + narrow at every depth) must enumerate
   exactly the oracle's sorted distinct rows. *)
let rows_of_trie trie =
  let w = Array.length (Trie.attrs trie) in
  let out = ref [] in
  let rec go depth lo hi prefix =
    if depth = w then out := Array.of_list (List.rev prefix) :: !out
    else
      Trie.iter_keys trie ~depth ~lo ~hi (fun v l h ->
          go (depth + 1) l h (v :: prefix))
  in
  if Trie.row_count trie > 0 then go 0 0 (Trie.row_count trie) [];
  Array.of_list (List.rev !out)

let trie_vs_oracle_prop () =
  let iters = prop_count 30 in
  for case = 0 to iters - 1 do
    let rng = Prng.create (0x51CA + (case * 7919)) in
    let width = 1 + Prng.int rng 3 in
    let n = Prng.int rng 40 in
    let dom = 1 + Prng.int rng 8 in
    let rows = random_rows rng ~n ~width ~dom in
    let attrs = Array.init width (fun i -> Printf.sprintf "c%d" i) in
    let oracle = sorted_distinct rows in
    let rel = R.make attrs rows in
    let trie = Trie.build ~order:attrs rel in
    let ctxt = Printf.sprintf "case %d (n=%d w=%d)" case n width in
    check Alcotest.int (ctxt ^ ": row_count") (Array.length oracle)
      (Trie.row_count trie);
    check
      Alcotest.(list (list int))
      (ctxt ^ ": walk = oracle")
      (Array.to_list (Array.map Array.to_list oracle))
      (Array.to_list (Array.map Array.to_list (rows_of_trie trie)));
    (* scratch-backed build is bit-identical *)
    let arena = Arena.create ~capacity:16 () in
    let trie' = Trie.build ~scratch:arena ~order:attrs rel in
    check Alcotest.int (ctxt ^ ": scratch build leaves arena empty") 0
      (Arena.used arena);
    for d = 0 to width - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "%s: scratch column %d identical" ctxt d)
        true
        (Column.equal (Trie.column trie d) (Trie.column trie' d))
    done;
    (* of_columns over the same columns walks identically *)
    let adopted =
      Trie.of_columns attrs ~nrows:(Trie.row_count trie)
        (Array.init width (Trie.column trie))
    in
    check
      Alcotest.(list (list int))
      (ctxt ^ ": of_columns walk")
      (Array.to_list (Array.map Array.to_list oracle))
      (Array.to_list (Array.map Array.to_list (rows_of_trie adopted)));
    (* seeks at depth 0 vs a naive scan over the oracle's first column *)
    let rows0 = Trie.row_count trie in
    for v = -1 to dom + 1 do
      let naive_geq = ref rows0 and naive_gt = ref rows0 in
      for i = rows0 - 1 downto 0 do
        if oracle.(i).(0) >= v then naive_geq := i;
        if oracle.(i).(0) > v then naive_gt := i
      done;
      check Alcotest.int
        (Printf.sprintf "%s: lower_bound %d" ctxt v)
        !naive_geq
        (Trie.lower_bound trie ~depth:0 ~lo:0 ~hi:rows0 v);
      check Alcotest.int
        (Printf.sprintf "%s: upper_bound %d" ctxt v)
        !naive_gt
        (Trie.upper_bound trie ~depth:0 ~lo:0 ~hi:rows0 v)
    done
  done

(* Delta trie under a random write stream vs a sorted-set oracle:
   membership, materialization, merged walks, and compaction counters
   must all agree with the model. *)
let delta_vs_oracle_prop () =
  let iters = prop_count 30 in
  for case = 0 to iters - 1 do
    let rng = Prng.create (0xDE17A + (case * 6271)) in
    let width = 1 + Prng.int rng 2 in
    let dom = 1 + Prng.int rng 6 in
    let attrs = Array.init width (fun i -> Printf.sprintf "c%d" i) in
    let init = random_rows rng ~n:(Prng.int rng 20) ~width ~dom in
    (* tiny compaction floor so the stream actually compacts *)
    let dt = ref (Delta_trie.of_relation ~min_compact:4 (R.make attrs init)) in
    let model = ref [] in
    let model_add rows =
      List.iter
        (fun r -> if not (List.exists (fun m -> m = r) !model) then
            model := Array.copy r :: !model)
        rows
    in
    let model_del rows =
      model := List.filter (fun m -> not (List.exists (fun r -> r = m) rows)) !model
    in
    model_add init;
    let ctxt = Printf.sprintf "case %d (w=%d dom=%d)" case width dom in
    for _step = 0 to 5 do
      let inserts = random_rows rng ~n:(Prng.int rng 6) ~width ~dom in
      let deletes = random_rows rng ~n:(Prng.int rng 6) ~width ~dom in
      let { Delta_trie.dt = dt'; _ } =
        Delta_trie.apply !dt ~inserts ~deletes
      in
      dt := dt';
      model_del deletes;
      model_add inserts;
      let expect = sorted_distinct !model in
      check Alcotest.int (ctxt ^ ": live_rows") (Array.length expect)
        (Delta_trie.live_rows !dt);
      check
        Alcotest.(list (list int))
        (ctxt ^ ": materialize")
        (Array.to_list (Array.map Array.to_list expect))
        (Array.to_list (Array.map Array.to_list (Delta_trie.materialize !dt)));
      (* merged depth-0 iteration vs the oracle's distinct leading keys *)
      let keys = ref [] in
      Delta_trie.iter_keys !dt ~depth:0 (Delta_trie.root !dt) (fun v _ ->
          keys := v :: !keys);
      let expect_keys =
        List.sort_uniq compare
          (Array.to_list (Array.map (fun r -> r.(0)) expect))
      in
      check
        Alcotest.(list int)
        (ctxt ^ ": merged keys")
        expect_keys (List.rev !keys);
      (* membership of every row in the domain cube's slice we touched *)
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (ctxt ^ ": mem")
            (List.exists (fun m -> m = r) !model)
            (Delta_trie.mem !dt r))
        (inserts @ deletes)
    done;
    (* an explicit compaction is a no-op on content *)
    let compacted = Delta_trie.compact !dt in
    check
      Alcotest.(list (list int))
      (ctxt ^ ": compaction preserves rows")
      (Array.to_list (Array.map Array.to_list (Delta_trie.materialize !dt)))
      (Array.to_list (Array.map Array.to_list (Delta_trie.materialize compacted)));
    check Alcotest.int (ctxt ^ ": compaction clears sides") 0
      (Delta_trie.side_count compacted)
  done

(* --- mmap snapshot image round trip --- *)

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lbt_column_test_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_image_round_trip () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "snapshot.lbt" in
  let rels =
    [
      ("E", 3, [| Column.of_array [| 1; 1; 2 |]; Column.of_array [| 2; 3; 3 |] |]);
      ("empty", 0, [| Column.empty |]);
      ("unary", 2, [| Column.of_array [| 4; 9 |] |]);
    ]
  in
  Snapshot.write_image ~path ~stamp:"stamp-1" rels;
  (match Snapshot.read_image ~path ~stamp:"stamp-1" with
  | None -> Alcotest.fail "image did not read back"
  | Some got ->
      check Alcotest.int "relation count" 3 (List.length got);
      List.iter2
        (fun (n, r, cols) (n', r', cols') ->
          check Alcotest.string "name" n n';
          check Alcotest.int "rows" r r';
          check Alcotest.int "width" (Array.length cols) (Array.length cols');
          Array.iteri
            (fun i c ->
              Alcotest.(check bool)
                (Printf.sprintf "%s col %d" n i)
                true (Column.equal c cols'.(i)))
            cols)
        rels got);
  (* wrong stamp: the image is for some other snapshot - refuse it *)
  Alcotest.(check bool)
    "stamp mismatch reads as absent" true
    (Snapshot.read_image ~path ~stamp:"stamp-2" = None);
  (* truncation: a short file can never satisfy its own header *)
  let full = In_channel.with_open_bin (Snapshot.cols_path path) In_channel.input_all in
  Out_channel.with_open_bin (Snapshot.cols_path path) (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full - 8)));
  Alcotest.(check bool)
    "torn image reads as absent" true
    (Snapshot.read_image ~path ~stamp:"stamp-1" = None)

let test_image_missing () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "nothing.lbt" in
  Alcotest.(check bool)
    "missing image reads as absent" true
    (Snapshot.read_image ~path ~stamp:"s" = None)

(* Mapped columns adopted as a trie must answer exactly like a built
   trie - the recovery fast path's contract. *)
let test_image_as_trie () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "snapshot.lbt" in
  let rng = Prng.create 0xC01 in
  let rows = random_rows rng ~n:200 ~width:2 ~dom:25 in
  let attrs = [| "u"; "v" |] in
  let built = Trie.build ~order:attrs (R.make attrs rows) in
  let nrows = Trie.row_count built in
  Snapshot.write_image ~path ~stamp:"s"
    [ ("E", nrows, Array.init 2 (Trie.column built)) ];
  match Snapshot.read_image ~path ~stamp:"s" with
  | None -> Alcotest.fail "image did not read back"
  | Some [ (_, n, cols) ] ->
      let mapped = Trie.of_columns attrs ~nrows:n cols in
      check
        Alcotest.(list (list int))
        "mapped trie walks like the built one"
        (Array.to_list (Array.map Array.to_list (rows_of_trie built)))
        (Array.to_list (Array.map Array.to_list (rows_of_trie mapped)))
  | Some _ -> Alcotest.fail "unexpected image shape"

let suite =
  [
    Alcotest.test_case "column: basics" `Quick test_column_basics;
    Alcotest.test_case "column: array round trip" `Quick test_column_round_trip;
    Alcotest.test_case "column: sub views alias" `Quick test_column_sub_aliases;
    Alcotest.test_case "column: blit" `Quick test_column_blit;
    Alcotest.test_case "arena: bump/release" `Quick test_arena_bump_and_release;
    Alcotest.test_case "arena: growth keeps views" `Quick
      test_arena_growth_keeps_views;
    Alcotest.test_case "arena: invalid" `Quick test_arena_invalid;
    Alcotest.test_case "gallop: boundary cases" `Quick test_gallop_boundaries;
    Alcotest.test_case "prop: column trie vs array oracle" `Quick
      trie_vs_oracle_prop;
    Alcotest.test_case "prop: delta trie vs set oracle" `Quick
      delta_vs_oracle_prop;
    Alcotest.test_case "image: round trip" `Quick test_image_round_trip;
    Alcotest.test_case "image: missing" `Quick test_image_missing;
    Alcotest.test_case "image: mapped trie walk" `Quick test_image_as_trie;
  ]
