(* Distributed serve: coordinator + forked worker processes.

   - Differential: for K in {1,2,3} shards over 2 workers, every query
     reply (rows, counts, counters) must be byte-identical to a
     single-process `--shards K` server fed the same seeded catalog
     and write stream - including under per-request budgets, which are
     never distributed.
   - Fault injection: SIGKILL one worker mid-window; replies must come
     back "degraded" with the complete (still identical) answer, and a
     restarted worker on the same port must rejoin (reseed) and serve
     again.
   - Cross-version splice fuzz: v2-only fields in v1 requests are
     ignored-with-counter; v1 requests stamped "v":2 against a plain
     server draw the structured reject. *)

module Json = Lb_service.Json
module Protocol = Lb_service.Protocol
module Server = Lb_service.Server
module Client = Lb_service.Client
module Worker = Lb_service.Worker
module Coordinator = Lb_service.Coordinator
module Prng = Lb_util.Prng

let check = Alcotest.check

let field name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks %S: %s" name (Json.to_string json)

let status json =
  match field "status" json with
  | Json.String s -> s
  | _ -> Alcotest.fail "non-string status"

(* --- forked worker processes --- *)

(* Ports unique per test process and per slot; the suite runs tests
   sequentially, so consecutive tests reuse them only after the
   previous worker died. *)
let port_of slot = 7400 + (Unix.getpid () mod 997) + (slot * 13)

let spawn_worker port =
  match Unix.fork () with
  | 0 ->
      (* Child: serve until killed.  Never return into the test
         runner. *)
      (try Worker.run ~port () with _ -> ());
      Unix._exit 0
  | pid ->
      (* Wait for the listener to come up. *)
      let rec poll tries =
        if tries = 0 then Alcotest.failf "worker on port %d never came up" port
        else
          match Client.connect ~timeout_ms:1000 ~port () with
          | Ok c ->
              check Alcotest.int "worker speaks v2" 2 (Client.version c);
              Client.close c
          | Error _ ->
              Unix.sleepf 0.05;
              poll (tries - 1)
      in
      poll 100;
      pid

let kill_worker pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let with_workers n f =
  let ports = List.init n port_of in
  let pids = List.map spawn_worker ports in
  Fun.protect
    ~finally:(fun () -> List.iter kill_worker pids)
    (fun () -> f ports)

(* --- the seeded session: catalog, writes, queries, budgets --- *)

let session_lines =
  let rng = Prng.create 4242 in
  let edges = List.init 80 (fun _ -> [ Prng.int rng 14; Prng.int rng 14 ]) in
  let fresh = List.init 10 (fun _ -> [ Prng.int rng 14; Prng.int rng 14 ]) in
  let tuples ts =
    Json.List (List.map (fun t -> Json.List (List.map (fun v -> Json.Int v) t)) ts)
  in
  let load name ts =
    Json.to_string
      (Json.Obj
         [
           ("op", Json.String "load");
           ("name", Json.String name);
           ("attrs", Json.List [ Json.String "u"; Json.String "v" ]);
           ("tuples", tuples ts);
         ])
  in
  let tri = {|{"op":"query","q":"E(x,y), E(y,z), E(z,x)"}|} in
  [
    load "E" edges;
    tri;
    {|{"op":"query","q":"E(x,y), E(y,z)","count_only":true}|};
    Json.to_string
      (Json.Obj
         [
           ("op", Json.String "insert");
           ("name", Json.String "E");
           ("tuples", tuples fresh);
         ]);
    tri;
    {|{"op":"query","q":"E(x,y), E(y,z), E(z,x)","engine":"leapfrog"}|};
    {|{"op":"query","q":"E(x,y), E(y,z), E(z,x), E(x,w)","max_ticks":3}|};
    Json.to_string
      (Json.Obj
         [
           ("op", Json.String "delete");
           ("name", Json.String "E");
           ("tuples", tuples (List.filteri (fun i _ -> i < 5) fresh));
         ]);
    tri;
    {|{"op":"query","q":"E(x,y), E(y,z), E(z,x)","limit":7}|};
  ]

(* Strip reply fields that legitimately differ across topologies:
   wall-clock, and (for hello) nothing - we simply don't send hello
   here. *)
let scrub reply =
  match reply with
  | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> k <> "elapsed_ms") fields)
  | other -> other

let run_single ~shards lines =
  let config = { Server.default_config with shards } in
  let srv = Server.create ~config () in
  List.map Json.parse (Client.run_script_lines srv lines)

let run_distributed ~shards ~ports lines =
  let config =
    {
      Server.default_config with
      shards;
      protocol_max = Protocol.max_version;
    }
  in
  let srv = Server.create ~config () in
  let coord =
    Coordinator.attach ~timeout_ms:2000 srv ~shards
      ~workers:(List.map (fun p -> ("127.0.0.1", p)) ports)
  in
  let replies = List.map Json.parse (Client.run_script_lines srv lines) in
  Coordinator.detach coord;
  replies

let test_distributed_differential () =
  with_workers 2 (fun ports ->
      List.iter
        (fun shards ->
          let single = run_single ~shards session_lines in
          let dist = run_distributed ~shards ~ports session_lines in
          List.iteri
            (fun i (s, d) ->
              check Alcotest.string
                (Printf.sprintf "K=%d reply %d byte-identical" shards i)
                (Json.to_string (scrub s))
                (Json.to_string (scrub d)))
            (List.combine single dist))
        [ 1; 2; 3 ])

(* Fresh (uncached) query replies carry the engine counters; those
   must match too - the work accounting is part of the contract, not
   just the rows. *)
let test_distributed_counters_identical () =
  with_workers 2 (fun ports ->
      let lines =
        [
          List.hd session_lines;
          {|{"op":"query","q":"E(x,y), E(y,z), E(z,x)"}|};
          {|{"op":"query","q":"E(x,y), E(y,z), E(z,x)","engine":"leapfrog"}|};
        ]
      in
      let single = run_single ~shards:3 lines in
      let dist = run_distributed ~shards:3 ~ports lines in
      List.iteri
        (fun i (s, d) ->
          check Alcotest.string
            (Printf.sprintf "counters reply %d identical" i)
            (Json.to_string (scrub s))
            (Json.to_string (scrub d)))
        (List.combine single dist))

let test_worker_death_degrades_and_rejoins () =
  let ports = [ port_of 4; port_of 5 ] in
  let pids = List.map spawn_worker ports in
  let cleanup = ref pids in
  Fun.protect
    ~finally:(fun () -> List.iter kill_worker !cleanup)
    (fun () ->
      let shards = 3 in
      let config =
        {
          Server.default_config with
          shards;
          protocol_max = Protocol.max_version;
        }
      in
      let srv = Server.create ~config () in
      let coord =
        Coordinator.attach ~timeout_ms:1000 srv ~shards
          ~workers:(List.map (fun p -> ("127.0.0.1", p)) ports)
      in
      let load = List.hd session_lines in
      (* Three distinct queries, so none is served from the result
         cache - each phase forces a fresh scatter. *)
      let q1 = {|{"op":"query","q":"E(x,y), E(y,z), E(z,x)"}|} in
      (* ... and cyclic with a pinned WCOJ engine, so each one takes
         the sharded (hence scattered) path rather than Yannakakis. *)
      let q2 =
        {|{"op":"query","q":"E(x,y), E(y,z), E(z,w), E(w,x)","engine":"generic_join"}|}
      in
      let q3 =
        {|{"op":"query","q":"E(x,y), E(y,z), E(z,x), E(x,w)","engine":"leapfrog"}|}
      in
      let expected =
        match run_single ~shards [ load; q1; q2; q3 ] with
        | [ _; e1; e2; e3 ] -> (scrub e1, scrub e2, scrub e3)
        | _ -> Alcotest.fail "bad single-process session"
      in
      let e1, e2, e3 = expected in
      let q line = Json.parse (Server.handle_line srv line) in
      ignore (Server.handle_line srv load);
      let healthy = q q1 in
      check Alcotest.string "healthy answer" (Json.to_string e1)
        (Json.to_string (scrub healthy));
      (* Kill worker 1; its slice must be absorbed, the reply marked
         degraded but otherwise identical. *)
      (match pids with
      | [ _; p1 ] ->
          kill_worker p1;
          cleanup := [ List.hd pids ]
      | _ -> assert false);
      let degraded = q q2 in
      check Alcotest.string "degraded status" "degraded" (status degraded);
      let as_ok =
        match scrub degraded with
        | Json.Obj fields ->
            Json.Obj
              (List.map
                 (fun (k, v) ->
                   if k = "status" then (k, Json.String "ok") else (k, v))
                 fields)
        | other -> other
      in
      check Alcotest.string "degraded answer still complete"
        (Json.to_string e2) (Json.to_string as_ok);
      (match
         Lb_util.Metrics.find_counter (Server.metrics srv)
           "serve.dist.degraded"
       with
      | Some n when n >= 1 -> ()
      | _ -> Alcotest.fail "degraded scatter not counted");
      (* Restart a worker on the same port: the next scatter reconnects,
         reseeds, and the reply is clean again. *)
      let p1' = spawn_worker (List.nth ports 1) in
      cleanup := p1' :: !cleanup;
      let recovered = q q3 in
      check Alcotest.string "recovered status" "ok" (status recovered);
      check Alcotest.string "recovered answer" (Json.to_string e3)
        (Json.to_string (scrub recovered));
      Coordinator.detach coord)

(* --- cross-version splice fuzz --- *)

(* v2-only fields spliced into v1 requests must be ignored (and
   counted); v1 requests stamped v:2 must draw the structured reject
   from a plain server and succeed against a worker. *)
let test_cross_version_splice_fuzz () =
  let v1_lines =
    [
      {|{"op":"ping"}|};
      {|{"op":"query","q":"R(a,b)"}|};
      {|{"op":"stats"}|};
      {|{"op":"load","name":"R","attrs":["a"],"tuples":[[1]]}|};
    ]
  in
  let v2_fields = [ "owned"; "lead"; "rel_version"; "mutation" ] in
  let srv = Server.create () in
  ignore
    (Server.handle_line srv
       {|{"op":"load","name":"R","attrs":["a","b"],"tuples":[[1,2]]}|});
  List.iteri
    (fun i line ->
      let extra = List.nth v2_fields (i mod List.length v2_fields) in
      let spliced =
        Printf.sprintf {|{"%s":7,%s|} extra
          (String.sub line 1 (String.length line - 1))
      in
      (* decodes to the same request, junk reported *)
      (match
         ( Protocol.request_of_string line,
           Protocol.request_of_string_ext spliced )
       with
      | Ok r, Ok (r', ignored, 1) ->
          if r <> r' then
            Alcotest.failf "splice changed the decode: %s" spliced;
          check
            Alcotest.(list string)
            (Printf.sprintf "junk reported in %s" spliced)
            [ extra ] ignored
      | _ -> Alcotest.failf "splice broke the decode: %s" spliced);
      (* and the live server still answers *)
      let reply = Json.parse (Server.handle_line srv spliced) in
      if status reply = "error" then
        Alcotest.failf "server rejected spliced v1 request: %s"
          (Json.to_string reply))
    v1_lines;
  (* v1 ops stamped v:2: structured reject on a plain server... *)
  let stamped =
    {|{"op":"query","v":2,"q":"R(a,b)"}|}
  in
  let reply = Json.parse (Server.handle_line srv stamped) in
  check Alcotest.string "stamped rejected" "error" (status reply);
  (match field "code" reply with
  | Json.String "unsupported_version" -> ()
  | other -> Alcotest.failf "bad code %s" (Json.to_string other));
  (* ...and accepted by a worker *)
  let wrk = Worker.create () in
  ignore
    (Server.handle_line wrk
       {|{"op":"load","name":"R","attrs":["a","b"],"tuples":[[1,2]]}|});
  let reply = Json.parse (Server.handle_line wrk stamped) in
  if status reply <> "ok" then
    Alcotest.failf "worker rejected stamped v1 op: %s" (Json.to_string reply);
  (* v2-only ops without the stamp are decode errors even on a worker *)
  let bare = {|{"op":"sync","version":0,"shards":2}|} in
  let reply = Json.parse (Server.handle_line wrk bare) in
  check Alcotest.string "bare v2 op rejected" "error" (status reply)

(* In-process 2-worker smoke: the dist-smoke alias target.  Forks are
   cheap; this keeps `dune runtest` covering the wire path end to
   end. *)
let test_dist_smoke () =
  with_workers 2 (fun ports ->
      let lines = [ List.hd session_lines; List.nth session_lines 1 ] in
      let dist = run_distributed ~shards:2 ~ports lines in
      let single = run_single ~shards:2 lines in
      List.iteri
        (fun i (s, d) ->
          check Alcotest.string
            (Printf.sprintf "smoke reply %d" i)
            (Json.to_string (scrub s))
            (Json.to_string (scrub d)))
        (List.combine single dist))

let suite =
  [
    Alcotest.test_case "dist smoke (2 workers in-process)" `Quick
      test_dist_smoke;
    Alcotest.test_case "distributed ≡ single-process sharded (K=1,2,3)"
      `Quick test_distributed_differential;
    Alcotest.test_case "distributed counters byte-identical" `Quick
      test_distributed_counters_identical;
    Alcotest.test_case "worker death degrades; restart rejoins" `Quick
      test_worker_death_degrades_and_rejoins;
    Alcotest.test_case "cross-version splice fuzz" `Quick
      test_cross_version_splice_fuzz;
  ]
