(* Differential and determinism tests for the worst-case-optimal join
   engine.

   - Differential: ~100 random (query, database) pairs are evaluated by
     Generic Join and Leapfrog Triejoin and compared against the naive
     hash-join oracle (Query.answer: a fold of Relation.natural_join,
     which shares no code with the trie engine).  Queries include unary
     atoms, repeated variables inside an atom, empty relations and
     cross products.
   - Determinism: the Domain-parallel driver must produce the same
     answer relation AND the same counter totals as the sequential
     engine - on skewed (broom) inputs, where task splitting is
     actually exercised, and on random inputs. *)

module Q = Lb_relalg.Query
module R = Lb_relalg.Relation
module Db = Lb_relalg.Database
module Gj = Lb_relalg.Generic_join
module Lf = Lb_relalg.Leapfrog
module Pool = Lb_util.Pool
module Exec = Lb_util.Exec
module Prng = Lb_util.Prng

let check = Alcotest.check

(* --- random instances --- *)

let var_pool = [| "a"; "b"; "c"; "d" |]

(* 1-3 atoms over 2-4 variables, arity 1-3, repeated variables allowed;
   every atom gets its own relation symbol *)
let random_query rng =
  let nvars = 2 + Prng.int rng 3 in
  let natoms = 1 + Prng.int rng 3 in
  List.init natoms (fun i ->
      let arity = 1 + Prng.int rng 3 in
      let vs = Array.init arity (fun _ -> var_pool.(Prng.int rng nvars)) in
      Q.atom (Printf.sprintf "R%d" i) vs)

(* small active domain so joins actually match; ~5% empty relations *)
let random_db rng (q : Q.t) =
  let dom = 2 + Prng.int rng 4 in
  Db.of_list
    (List.map
       (fun (a : Q.atom) ->
         let arity = Array.length a.Q.attrs in
         let nrows = if Prng.bernoulli rng 0.05 then 0 else 1 + Prng.int rng 12 in
         let tuples =
           List.init nrows (fun _ ->
               Array.init arity (fun _ -> Prng.int rng dom))
         in
         let attrs = Array.init arity (Printf.sprintf "c%d") in
         (a.Q.rel, R.make attrs tuples))
       q)

let test_differential () =
  for seed = 1 to 100 do
    let rng = Prng.create (31 * seed) in
    let q = random_query rng in
    let db = random_db rng q in
    let oracle = Q.answer db q in
    let gj = Gj.answer db q in
    let lf = Lf.answer db q in
    let ctxt = Printf.sprintf "seed %d, query %s" seed (Q.to_string q) in
    if not (R.equal_modulo_order oracle gj) then
      Alcotest.failf "GJ disagrees with oracle (%s)" ctxt;
    if not (R.equal_modulo_order oracle lf) then
      Alcotest.failf "LFTJ disagrees with oracle (%s)" ctxt;
    check Alcotest.int
      (Printf.sprintf "GJ count (%s)" ctxt)
      (R.cardinality oracle) (Gj.count db q);
    check Alcotest.int
      (Printf.sprintf "LFTJ count (%s)" ctxt)
      (R.cardinality oracle) (Lf.count db q)
  done

(* --- parallel determinism --- *)

(* the broom: value 0 of the first variable carries ~half the join
   work, so the driver's skew splitting is on the hot path *)
let broom_relation n attrs =
  let tuples = ref [ [| 0; 0 |] ] in
  for i = 1 to n do
    tuples := [| 0; i |] :: [| i; 0 |] :: !tuples
  done;
  R.make attrs !tuples

let broom_db n =
  Db.of_list
    [
      ("R", broom_relation n [| "a"; "b" |]);
      ("S", broom_relation n [| "b"; "c" |]);
      ("T", broom_relation n [| "a"; "c" |]);
    ]

let triangle = Q.parse "R(a,b), S(b,c), T(a,c)"

let test_parallel_matches_sequential_gj () =
  let db = broom_db 150 in
  let cs = Gj.fresh_counters () in
  let n_seq = Gj.count ~counters:cs db triangle in
  let ans_seq = Gj.answer db triangle in
  Pool.with_pool 4 (fun pool ->
      let cp = Gj.fresh_counters () in
      let n_par = Gj.count ~counters:cp ~ctx:(Exec.make ~pool ()) db triangle in
      check Alcotest.int "count" n_seq n_par;
      check Alcotest.int "intersections counter" cs.Gj.intersections
        cp.Gj.intersections;
      check Alcotest.int "emitted counter" cs.Gj.emitted cp.Gj.emitted;
      let ans_par = Gj.answer ~ctx:(Exec.make ~pool ()) db triangle in
      check Alcotest.bool "answer relation" true (R.equal ans_seq ans_par))

let test_parallel_matches_sequential_lf () =
  let db = broom_db 150 in
  let cs = Lf.fresh_counters () in
  let n_seq = Lf.count ~counters:cs db triangle in
  let ans_seq = Lf.answer db triangle in
  Pool.with_pool 4 (fun pool ->
      let cp = Lf.fresh_counters () in
      let n_par = Lf.count ~counters:cp ~ctx:(Exec.make ~pool ()) db triangle in
      check Alcotest.int "count" n_seq n_par;
      check Alcotest.int "seeks counter" cs.Lf.seeks cp.Lf.seeks;
      check Alcotest.int "emitted counter" cs.Lf.emitted cp.Lf.emitted;
      let ans_par = Lf.answer ~ctx:(Exec.make ~pool ()) db triangle in
      check Alcotest.bool "answer relation" true (R.equal ans_seq ans_par))

let test_parallel_random_instances () =
  Pool.with_pool 3 (fun pool ->
      for seed = 1 to 25 do
        let rng = Prng.create (977 * seed) in
        let q = random_query rng in
        let db = random_db rng q in
        let ctxt = Printf.sprintf "seed %d, query %s" seed (Q.to_string q) in
        check Alcotest.int
          (Printf.sprintf "GJ par count (%s)" ctxt)
          (Gj.count db q)
          (Gj.count ~ctx:(Exec.make ~pool ()) db q);
        check Alcotest.int
          (Printf.sprintf "LFTJ par count (%s)" ctxt)
          (Lf.count db q)
          (Lf.count ~ctx:(Exec.make ~pool ()) db q);
        if not (R.equal (Gj.answer db q) (Gj.answer ~ctx:(Exec.make ~pool ()) db q)) then
          Alcotest.failf "GJ par answer differs (%s)" ctxt
      done)

(* a pool of size 1 must behave exactly like no pool at all *)
let test_pool_of_one_is_sequential () =
  let db = broom_db 40 in
  Pool.with_pool 1 (fun pool ->
      let cs = Gj.fresh_counters () in
      let n_seq = Gj.count ~counters:cs db triangle in
      let cp = Gj.fresh_counters () in
      let n_par = Gj.count ~counters:cp ~ctx:(Exec.make ~pool ()) db triangle in
      check Alcotest.int "count" n_seq n_par;
      check Alcotest.int "intersections" cs.Gj.intersections
        cp.Gj.intersections)

let suite =
  [
    Alcotest.test_case "100 random queries: GJ/LFTJ = hash-join oracle" `Quick
      test_differential;
    Alcotest.test_case "parallel GJ = sequential (broom skew)" `Quick
      test_parallel_matches_sequential_gj;
    Alcotest.test_case "parallel LFTJ = sequential (broom skew)" `Quick
      test_parallel_matches_sequential_lf;
    Alcotest.test_case "parallel = sequential on 25 random instances" `Quick
      test_parallel_random_instances;
    Alcotest.test_case "pool of one degenerates to sequential" `Quick
      test_pool_of_one_is_sequential;
  ]
