(* Tests for the ColSub(H) workload (Lb_graph.Colsub) and the planner's
   fhw-aware decomposition route: the three evaluation routes
   (backtracking, CSP, tree-decomposition DP) are differentials of each
   other, the clique reduction round-trips, and the planner's
   decomposition route answers byte-identically to flat WCOJ. *)

module Prng = Lb_util.Prng
module Budget = Lb_util.Budget
module Metrics = Lb_util.Metrics
module Exec = Lb_util.Exec
module Graph = Lb_graph.Graph
module Gen = Lb_graph.Generators
module Colsub = Lb_graph.Colsub
module Td = Lb_graph.Tree_decomposition
module Q = Lb_relalg.Query
module R = Lb_relalg.Relation
module Db = Lb_relalg.Database
module Planner = Lb_service.Planner

let check = Alcotest.check

(* A random ColSub instance: a random pattern on k vertices, color
   classes of 1-3 host vertices each, and host edges drawn between the
   classes of each pattern edge with probability [p] (plus a few noise
   edges inside classes, which no embedding may use). *)
let random_instance rng =
  let k = 3 + Prng.int rng 3 in
  let pattern = Gen.gnp rng k 0.6 in
  let sizes = Array.init k (fun _ -> 1 + Prng.int rng 3) in
  let offset = Array.make k 0 in
  let n = ref 0 in
  Array.iteri
    (fun i s ->
      offset.(i) <- !n;
      n := !n + s)
    sizes;
  let colors = Array.make !n 0 in
  Array.iteri
    (fun i s ->
      for j = 0 to s - 1 do
        colors.(offset.(i) + j) <- i
      done)
    sizes;
  let edges = ref [] in
  Graph.iter_edges
    (fun u v ->
      for i = 0 to sizes.(u) - 1 do
        for j = 0 to sizes.(v) - 1 do
          if Prng.bernoulli rng 0.5 then
            edges := (offset.(u) + i, offset.(v) + j) :: !edges
        done
      done)
    pattern;
  (* noise inside a class: colorful embeddings cannot use these *)
  Array.iteri
    (fun i s ->
      if s >= 2 && Prng.bool rng then
        edges := (offset.(i), offset.(i) + 1) :: !edges)
    sizes;
  let host = Graph.of_edges !n !edges in
  Colsub.make ~pattern ~host ~colors

(* --- the three routes are differentials of each other --- *)

let routes_agree_prop =
  QCheck.Test.make
    ~name:"ColSub: backtracking = CSP = decomposition DP (count + witness)"
    ~count:60
    QCheck.(int_bound 1000000)
    (fun seed ->
      let inst = random_instance (Prng.create seed) in
      let bt = Colsub.count_backtracking inst in
      let dp = Colsub.count_decomposed inst in
      let csp = Lb_reductions.Colsub_to_csp.count inst in
      let w_bt = Colsub.find_backtracking inst in
      let w_dp = Colsub.find_decomposed inst in
      let w_csp = Lb_reductions.Colsub_to_csp.find inst in
      let verifies = function
        | Some f -> Colsub.verify inst f
        | None -> bt = 0
      in
      bt = dp && dp = csp
      && (w_bt <> None) = (bt > 0)
      && (w_dp <> None) = (bt > 0)
      && (w_csp <> None) = (bt > 0)
      && verifies w_bt && verifies w_dp && verifies w_csp)

(* On a blown-up ladder every combination embeds: count = n^k exactly,
   and the DP must agree under any valid decomposition. *)
let test_ladder_counts () =
  let pattern = Gen.grid 2 3 in
  let k = Graph.vertex_count pattern in
  let n = 3 in
  let edges = ref [] in
  Graph.iter_edges
    (fun u v ->
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          edges := ((u * n) + i, (v * n) + j) :: !edges
        done
      done)
    pattern;
  let host = Graph.of_edges (k * n) !edges in
  let colors = Array.init (k * n) (fun hv -> hv / n) in
  let inst = Colsub.make ~pattern ~host ~colors in
  let expected = int_of_float (float_of_int n ** float_of_int k) in
  check Alcotest.int "backtracking" expected (Colsub.count_backtracking inst);
  check Alcotest.int "decomposed" expected (Colsub.count_decomposed inst);
  let td = Colsub.default_decomposition inst in
  Alcotest.(check bool)
    "default decomposition is valid" true
    (Td.verify td pattern = Ok ());
  Alcotest.(check bool) "ladder tw 2" true (Td.width td <= 2);
  check Alcotest.int "explicit decomposition" expected
    (Colsub.count_decomposed ~decomposition:td inst)

let test_make_validates () =
  let pattern = Gen.cycle 3 in
  let host = Gen.cycle 3 in
  Alcotest.(check bool) "color out of range rejected" true
    (match Colsub.make ~pattern ~host ~colors:[| 0; 1; 3 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "color count mismatch rejected" true
    (match Colsub.make ~pattern ~host ~colors:[| 0; 1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bad_decomposition_rejected () =
  let inst =
    Colsub.make ~pattern:(Gen.cycle 3) ~host:(Gen.cycle 3)
      ~colors:[| 0; 1; 2 |]
  in
  (* A decomposition of the wrong graph: one bag missing an edge. *)
  let td = Td.make ~bags:[| [| 0; 1 |] |] ~tree:[] in
  Alcotest.(check bool) "invalid decomposition raises" true
    (match Colsub.count_decomposed ~decomposition:td inst with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Clique => ColSub (Section 5) --- *)

let clique_roundtrip_prop =
  QCheck.Test.make
    ~name:"Clique -> ColSub(K_k) preserves answers and witnesses"
    ~count:50
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 4 + Prng.int rng 6 in
      let g = Gen.gnp rng n 0.5 in
      let k = 2 + Prng.int rng 3 in
      Lb_reductions.Clique_to_colsub.preserves g k)

let test_clique_shape () =
  let g = Gen.cycle 5 in
  let inst = Lb_reductions.Clique_to_colsub.to_colsub g 3 in
  check Alcotest.int "host is k copies of V(G)" 15
    (Graph.vertex_count (Colsub.host inst));
  check Alcotest.int "pattern is K_k" 3
    (Graph.vertex_count (Colsub.pattern inst));
  Alcotest.(check bool) "C5 has no triangle" true
    (Colsub.find_backtracking inst = None)

(* --- governance: budget + metrics through Subgraph_iso --- *)

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges n !edges

let test_subgraph_iso_governance () =
  let inst = Lb_reductions.Clique_to_colsub.to_colsub (complete 6) 3 in
  let metrics = Metrics.create () in
  let ctx = Exec.make ~metrics () in
  Alcotest.(check bool) "found" true (Colsub.find_backtracking ~ctx inst <> None);
  Alcotest.(check bool) "subgraph_iso.nodes counted" true
    (match Metrics.find_counter metrics "subgraph_iso.nodes" with
    | Some n -> n > 0
    | None -> false);
  let budget = Budget.create ~ticks:1 () in
  let ctx = Exec.make ~budget () in
  Alcotest.(check bool) "1-tick budget exhausts" true
    (match Colsub.count_backtracking ~ctx inst with
    | exception Budget.Budget_exhausted _ -> true
    | _ -> false);
  Budget.reset budget;
  Alcotest.(check bool) "1-tick budget exhausts the DP too" true
    (match Colsub.count_decomposed ~ctx inst with
    | exception Budget.Budget_exhausted _ -> true
    | _ -> false)

(* --- Fhw.decomposition returns an actual decomposition --- *)

let test_fhw_decomposition () =
  let q = Q.parse "R(a,b), S(b,c), T(c,d), U(d,e), V(e,a)" in
  let h = Q.hypergraph q in
  let w, td = Lb_hypergraph.Fhw.decomposition h in
  Alcotest.(check bool) "valid over the primal graph" true
    (Td.verify td (Lb_hypergraph.Hypergraph.primal h) = Ok ());
  Alcotest.(check bool) "5-cycle fhw 2" true (Float.abs (w -. 2.0) < 1e-6)

(* --- the planner's decomposition route --- *)

let five_cycle = "R(a,b), S(b,c), T(c,d), U(d,e), V(e,a)"

let random_db rng n =
  List.fold_left
    (fun db name ->
      let tuples =
        List.init (3 * n) (fun _ ->
            [| Prng.int rng n; Prng.int rng n |])
      in
      Db.add db name (R.make [| "x"; "y" |] tuples))
    Db.empty
    [ "R"; "S"; "T"; "U"; "V" ]

let canonical q rel =
  let r = R.project rel (Q.attributes q) in
  let rows = Array.copy (R.tuples r) in
  Array.sort compare rows;
  rows

let test_planner_routes_decomposed () =
  let q = Q.parse five_cycle in
  let db = random_db (Prng.create 11) 32 in
  let plan = Planner.choose db q in
  Alcotest.(check string)
    "5-cycle routes through the decomposition" "decomposed"
    (Planner.engine_name plan.Planner.engine);
  Alcotest.(check bool) "plan carries fhw < rho*" true
    (match (plan.Planner.fhw, plan.Planner.rho_star) with
    | Some fhw, Some rho -> fhw < rho
    | _ -> false);
  Alcotest.(check bool) "plan carries the decomposition" true
    (plan.Planner.decomposition <> None);
  Alcotest.(check bool) "explanation names the route" true
    (List.exists
       (fun l ->
         String.length l >= 20 && String.sub l 0 20 = "route: decomposition")
       plan.Planner.explanation);
  let dec, _ =
    Lb_relalg.Decomposed_join.answer
      ?decomposition:plan.Planner.decomposition db q
  in
  let gj = Lb_relalg.Generic_join.answer db q in
  Alcotest.(check bool) "byte-identical to flat WCOJ" true
    (canonical q dec = canonical q gj)

let test_planner_flat_route_explained () =
  (* The triangle: rho* = 1.5 and no decomposition can beat it, so the
     plan stays flat and says why. *)
  let q = Q.parse "R(a,b), S(b,c), T(c,a)" in
  let db = random_db (Prng.create 12) 16 in
  let plan = Planner.choose db q in
  Alcotest.(check bool) "triangle stays flat" true
    (plan.Planner.engine <> Planner.Decomposed);
  Alcotest.(check bool) "flat route line present" true
    (List.exists
       (fun l -> String.length l >= 11 && String.sub l 0 11 = "route: flat")
       plan.Planner.explanation)

(* --- the colsub protocol op end to end --- *)

let colsub_req meth count : Lb_service.Protocol.request =
  Lb_service.Protocol.Colsub
    {
      k = 3;
      pattern_edges = [ (0, 1); (1, 2); (2, 0) ];
      colors = [ 0; 0; 1; 1; 2; 2 ];
      host_edges = [ (0, 2); (2, 4); (0, 4); (1, 3); (3, 5); (1, 5) ];
      meth;
      count;
      cs_timeout_ms = None;
      cs_max_ticks = None;
    }

let test_protocol_roundtrip () =
  let module P = Lb_service.Protocol in
  let req = colsub_req P.Cs_csp true in
  match P.decode_request (P.encode_request req) with
  | Ok (P.Colsub c) ->
      Alcotest.(check bool) "round-trips" true
        (c = (match req with P.Colsub c -> c | _ -> assert false))
  | Ok _ -> Alcotest.fail "decoded to a different op"
  | Error msg -> Alcotest.fail msg

let test_server_colsub () =
  let module P = Lb_service.Protocol in
  let srv = Lb_service.Server.create () in
  let counts =
    List.map
      (fun meth ->
        let reply = Lb_service.Server.handle srv (colsub_req meth true) in
        (match Lb_service.Json.string_field "status" reply with
        | Ok "ok" -> ()
        | _ -> Alcotest.fail "colsub op failed");
        match Lb_service.Json.int_field "count" reply with
        | Ok n -> n
        | Error msg -> Alcotest.fail msg)
      [ P.Cs_auto; P.Cs_backtracking; P.Cs_csp; P.Cs_decomposition ]
  in
  (match counts with
  | c :: rest ->
      Alcotest.(check bool) "all methods agree over the wire" true
        (List.for_all (( = ) c) rest);
      check Alcotest.int "two colorful triangles" 2 c
  | [] -> assert false);
  let witness = Lb_service.Server.handle srv (colsub_req P.Cs_auto false) in
  (match Lb_service.Json.member "witness" witness with
  | Some (Lb_service.Json.List [ _; _; _ ]) -> ()
  | _ -> Alcotest.fail "witness missing");
  (* A 1-tick budget answers status=timeout, not an exception. *)
  let starved =
    match colsub_req P.Cs_backtracking true with
    | P.Colsub c -> P.Colsub { c with P.cs_max_ticks = Some 1 }
    | _ -> assert false
  in
  let reply = Lb_service.Server.handle srv starved in
  match Lb_service.Json.string_field "status" reply with
  | Ok "timeout" -> ()
  | _ -> Alcotest.fail "expected a timeout reply"

let suite =
  [
    QCheck_alcotest.to_alcotest routes_agree_prop;
    Alcotest.test_case "ladder counts n^k" `Quick test_ladder_counts;
    Alcotest.test_case "make validates colors" `Quick test_make_validates;
    Alcotest.test_case "bad decomposition rejected" `Quick
      test_bad_decomposition_rejected;
    QCheck_alcotest.to_alcotest clique_roundtrip_prop;
    Alcotest.test_case "Clique->ColSub shape" `Quick test_clique_shape;
    Alcotest.test_case "budget + metrics governance" `Quick
      test_subgraph_iso_governance;
    Alcotest.test_case "Fhw.decomposition" `Quick test_fhw_decomposition;
    Alcotest.test_case "planner routes 5-cycle decomposed" `Quick
      test_planner_routes_decomposed;
    Alcotest.test_case "planner explains flat routes" `Quick
      test_planner_flat_route_explained;
    Alcotest.test_case "colsub protocol round-trip" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "colsub op end to end" `Quick test_server_colsub;
  ]
