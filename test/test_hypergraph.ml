(* Tests for lb_hypergraph: construction, primal graphs, acyclicity and
   join trees, fractional covers (the AGM exponent), hypercliques. *)

module H = Lb_hypergraph.Hypergraph
module Cover = Lb_hypergraph.Cover
module Acyclic = Lb_hypergraph.Acyclic
module Hc = Lb_hypergraph.Hyperclique
module Prng = Lb_util.Prng

let check = Alcotest.check

let close a b = abs_float (a -. b) < 1e-6

let test_create_normalizes () =
  let h = H.create 3 [ [| 2; 0; 0 |] ] in
  check Alcotest.(list int) "sorted dedup" [ 0; 2 ] (Array.to_list (H.edges h).(0))

let test_create_rejects () =
  Alcotest.check_raises "range" (Invalid_argument "Hypergraph.create: vertex range")
    (fun () -> ignore (H.create 2 [ [| 0; 5 |] ]))

let test_primal () =
  let h = H.create 4 [ [| 0; 1; 2 |]; [| 2; 3 |] ] in
  let g = H.primal h in
  check Alcotest.int "edges" 4 (Lb_graph.Graph.edge_count g);
  Alcotest.(check bool) "0-1" true (Lb_graph.Graph.has_edge g 0 1);
  Alcotest.(check bool) "not 0-3" false (Lb_graph.Graph.has_edge g 0 3)

let test_acyclicity () =
  Alcotest.(check bool) "path acyclic" true (Acyclic.is_acyclic (H.path 5));
  Alcotest.(check bool) "star acyclic" true (Acyclic.is_acyclic (H.star 5));
  Alcotest.(check bool) "triangle cyclic" false
    (Acyclic.is_acyclic (Lazy.force H.triangle));
  Alcotest.(check bool) "cycle cyclic" false (Acyclic.is_acyclic (H.cycle 5));
  (* alpha-acyclicity: triangle + covering 3-ary edge IS acyclic *)
  let h =
    H.create 3 [ [| 0; 1 |]; [| 1; 2 |]; [| 0; 2 |]; [| 0; 1; 2 |] ]
  in
  Alcotest.(check bool) "covered triangle acyclic" true (Acyclic.is_acyclic h)

let join_tree_valid_prop =
  QCheck.Test.make ~name:"join trees satisfy connectivity" ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      (* acyclic by construction: path or star shapes with extra subsumed
         edges *)
      let k = 2 + Prng.int rng 6 in
      let base = if Prng.bool rng then H.path k else H.star k in
      match Acyclic.join_tree base with
      | Some parent -> Acyclic.verify_join_tree base parent
      | None -> false)

let test_rho_star_triangle () =
  match Cover.rho_star (Lazy.force H.triangle) with
  | Some r -> Alcotest.(check bool) "3/2" true (close r 1.5)
  | None -> Alcotest.fail "rho* exists"

let test_rho_star_known () =
  let get h = Option.get (Cover.rho_star h) in
  Alcotest.(check bool) "LW3 = 1.5" true (close (get (H.loomis_whitney 3)) 1.5);
  (* path k: both end vertices force their edges to weight 1; the optimum
     covers the odd-length path with ceil((k+1)/2) edges *)
  Alcotest.(check bool) "path3 = 2" true (close (get (H.path 3)) 2.0);
  Alcotest.(check bool) "path2 = 2" true (close (get (H.path 2)) 2.0);
  (* 4-cycle: rho* = 2 *)
  Alcotest.(check bool) "C4 = 2" true (close (get (H.cycle 4)) 2.0);
  (* 5-cycle: rho* = 5/2 * (1/2)... each edge 1/2 covers: weight 5/2 *)
  Alcotest.(check bool) "C5 = 2.5" true (close (get (H.cycle 5)) 2.5);
  (* star with k leaves: needs every leaf edge: rho* = k... each leaf
     only covered by its own edge *)
  Alcotest.(check bool) "star3 = 3" true (close (get (H.star 3)) 3.0);
  (* clique query on 4 vertices: rho* = 2 *)
  Alcotest.(check bool) "K4 = 2" true (close (get (H.clique_query 4)) 2.0)

let test_rho_star_uncovered () =
  let h = H.create 3 [ [| 0; 1 |] ] in
  Alcotest.(check bool) "uncovered -> none" true (Cover.rho_star h = None)

let cover_feasible_prop =
  QCheck.Test.make ~name:"fractional cover solutions are feasible covers"
    ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 5 in
      let h = H.random_uniform rng n 2 0.7 in
      if not (H.covers_all_vertices h) then QCheck.assume_fail ()
      else
        match Cover.fractional_edge_cover h with
        | Some { weights; value } ->
            Cover.is_fractional_cover h weights
            && close value (Array.fold_left ( +. ) 0.0 weights)
        | None -> false)

let duality_prop =
  QCheck.Test.make ~name:"cover LP value = packing LP value (duality)"
    ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 5 in
      let h = H.random_uniform rng n 2 0.7 in
      if not (H.covers_all_vertices h) then QCheck.assume_fail ()
      else
        match (Cover.fractional_edge_cover h, Cover.fractional_vertex_packing h) with
        | Some c, Some p -> abs_float (c.value -. p.value) < 1e-6
        | _ -> false)

let integral_cover_prop =
  QCheck.Test.make ~name:"integral cover >= fractional cover" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 4 in
      let h = H.random_uniform rng n 2 0.8 in
      if not (H.covers_all_vertices h) then QCheck.assume_fail ()
      else
        match (Cover.integral_edge_cover h, Cover.rho_star h) with
        | Some ic, Some rho -> float_of_int (Array.length ic) >= rho -. 1e-9
        | _ -> false)

let test_hyperclique () =
  (* complete 3-uniform hypergraph on 5 vertices has a 5-hyperclique *)
  let edges = ref [] in
  Lb_util.Combinat.iter_subsets 5 3 (fun s -> edges := Array.copy s :: !edges);
  let h = H.create 5 !edges in
  (match Hc.find h ~d:3 ~k:4 with
  | Some vs ->
      Alcotest.(check bool) "valid" true (Hc.is_hyperclique h ~d:3 vs)
  | None -> Alcotest.fail "4-hyperclique expected");
  (* remove one edge: no 5-hyperclique *)
  let edges' = List.tl !edges in
  let h' = H.create 5 edges' in
  Alcotest.(check bool) "5 fails" true (Hc.find h' ~d:3 ~k:5 = None)

let test_hyperclique_uniformity_check () =
  let h = H.create 3 [ [| 0; 1 |] ] in
  Alcotest.check_raises "not uniform"
    (Invalid_argument "Hyperclique.find: hypergraph is not d-uniform")
    (fun () -> ignore (Hc.find h ~d:3 ~k:3))

let hyperclique_matmul_agrees_prop =
  QCheck.Test.make
    ~name:"aux-product hyperclique agrees with brute force (d=3, k=3,6)"
    ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 6 + Prng.int rng 8 in
      let h = H.random_uniform rng n 3 (0.3 +. Prng.float rng 0.5) in
      let agree k =
        let brute = Hc.find h ~d:3 ~k in
        let aux = Hc.find_matmul h ~d:3 ~k in
        (match aux with
        | Some vs -> Hc.is_hyperclique h ~d:3 vs
        | None -> true)
        && (aux <> None) = (brute <> None)
      in
      agree 3 && agree 6)

let test_hyperclique_matmul_validation () =
  let h3 = H.create 4 [ [| 0; 1; 2 |] ] in
  Alcotest.check_raises "k not multiple of 3"
    (Invalid_argument "Hyperclique.find_matmul: k must be a multiple of 3")
    (fun () -> ignore (Hc.find_matmul h3 ~d:3 ~k:4));
  let h4 = H.create 5 [ [| 0; 1; 2; 3 |] ] in
  Alcotest.check_raises "k < d"
    (Invalid_argument "Hyperclique.find_matmul: k < d")
    (fun () -> ignore (Hc.find_matmul h4 ~d:4 ~k:3));
  let h2 = H.create 3 [ [| 0; 1 |] ] in
  Alcotest.check_raises "not uniform"
    (Invalid_argument "Hyperclique.find_matmul: hypergraph is not d-uniform")
    (fun () -> ignore (Hc.find_matmul h2 ~d:3 ~k:3))

let suite =
  [
    Alcotest.test_case "create normalizes" `Quick test_create_normalizes;
    Alcotest.test_case "create rejects" `Quick test_create_rejects;
    Alcotest.test_case "primal graph" `Quick test_primal;
    Alcotest.test_case "acyclicity" `Quick test_acyclicity;
    QCheck_alcotest.to_alcotest join_tree_valid_prop;
    Alcotest.test_case "rho* triangle" `Quick test_rho_star_triangle;
    Alcotest.test_case "rho* known values" `Quick test_rho_star_known;
    Alcotest.test_case "rho* uncovered" `Quick test_rho_star_uncovered;
    QCheck_alcotest.to_alcotest cover_feasible_prop;
    QCheck_alcotest.to_alcotest duality_prop;
    QCheck_alcotest.to_alcotest integral_cover_prop;
    Alcotest.test_case "hyperclique" `Quick test_hyperclique;
    Alcotest.test_case "hyperclique uniformity" `Quick
      test_hyperclique_uniformity_check;
    QCheck_alcotest.to_alcotest hyperclique_matmul_agrees_prop;
    Alcotest.test_case "hyperclique matmul validation" `Quick
      test_hyperclique_matmul_validation;
  ]
