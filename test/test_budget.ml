(* Budget and Metrics unit tests: tick-exact exhaustion, deadline
   promptness, cancellation and re-runnability, metrics JSON round
   trips, and the zero-overhead disabled sink. *)

module Budget = Lb_util.Budget
module Metrics = Lb_util.Metrics
module Prng = Lb_util.Prng
module Cnf = Lb_sat.Cnf
module Dpll = Lb_sat.Dpll

(* A hard unsatisfiable 3SAT instance near the threshold ratio:
   unlimited DPLL needs seconds on it (~5k decisions), far longer than
   any budget set here, so the budgeted runs below always exhaust. *)
let hard_cnf () =
  let rng = Prng.create 20260806 in
  Cnf.random_ksat rng ~nvars:140 ~nclauses:616 ~k:3

let tick_limit_exact () =
  let b = Budget.create ~ticks:10 () in
  for _ = 1 to 10 do
    Budget.tick b
  done;
  Alcotest.(check int) "used all ten" 10 (Budget.used b);
  (match Budget.tick b with
  | () -> Alcotest.fail "11th tick must raise"
  | exception Budget.Budget_exhausted e ->
      Alcotest.(check bool) "reason = Ticks" true (e.Budget.reason = Budget.Ticks);
      Alcotest.(check int) "partial progress = 10" 10 e.Budget.ticks);
  (* still exhausted on the next tick too *)
  match Budget.tick b with
  | () -> Alcotest.fail "stays exhausted"
  | exception Budget.Budget_exhausted _ -> ()

let deadline_within_quantum () =
  (* an already-expired deadline must fire within one polling quantum
     of ticks *)
  let b = Budget.create ~seconds:0.001 () in
  Unix.sleepf 0.005;
  let fired_at = ref (-1) in
  (try
     for i = 1 to 2 * Budget.quantum do
       Budget.tick b;
       fired_at := i
     done
   with Budget.Budget_exhausted e ->
     Alcotest.(check bool) "reason = Deadline" true
       (e.Budget.reason = Budget.Deadline));
  Alcotest.(check bool)
    (Printf.sprintf "fired within one quantum (at tick %d)" (!fired_at + 1))
    true
    (!fired_at < Budget.quantum)

let dpll_deadline_prompt () =
  let f = hard_cnf () in
  let budget = Budget.create ~seconds:0.05 () in
  let t0 = Unix.gettimeofday () in
  let outcome = Dpll.solve_bounded ~budget f in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match outcome with
  | Budget.Exhausted e ->
      Alcotest.(check bool) "made progress before exhaustion" true
        (e.Budget.ticks > 0)
  | Budget.Done _ ->
      (* the instance resolving under 50ms would make the test vacuous *)
      Alcotest.fail "expected the hard instance to outlast 50ms");
  Alcotest.(check bool)
    (Printf.sprintf "returned promptly (%.0fms)" (elapsed *. 1000.))
    true (elapsed < 1.0)

let cancellation_rerunnable () =
  let f = hard_cnf () in
  (* budgeted run: exhausts *)
  let budget = Budget.create ~ticks:500 () in
  (match Dpll.solve_bounded ~budget f with
  | Budget.Exhausted e -> Alcotest.(check int) "ticks = 500" 500 e.Budget.ticks
  | Budget.Done _ -> Alcotest.fail "500 ticks cannot finish this instance");
  (* cancellation: fires on the next tick *)
  let b2 = Budget.create () in
  Budget.cancel b2;
  (match Dpll.solve_bounded ~budget:b2 f with
  | Budget.Exhausted e ->
      Alcotest.(check bool) "reason = Cancelled" true
        (e.Budget.reason = Budget.Cancelled)
  | Budget.Done _ -> Alcotest.fail "cancelled budget must not complete");
  (* the interrupted solver keeps no hidden state: after reset the same
     budget drives the same instance again and stats accumulate afresh
     (full completion takes seconds, so re-run under a tick limit and
     compare the deterministic interruption points instead) *)
  Budget.reset b2;
  let run () =
    let stats = Dpll.fresh_stats () in
    let budget = Budget.create ~ticks:500 () in
    ignore (Dpll.solve_bounded ~stats ~budget f);
    (stats.Dpll.decisions, stats.Dpll.propagations)
  in
  Alcotest.(check bool) "interrupted runs are reproducible" true
    (run () = run ())

let csp_budget_partial_stats () =
  let rng = Prng.create 42 in
  let csp, _, _ =
    Lb_csp.Generators.bounded_treewidth rng ~nvars:40 ~width:3 ~domain_size:6
      ~density:0.9 ~plant:true
  in
  let stats = Lb_csp.Solver.fresh_stats () in
  let budget = Budget.create ~ticks:200 () in
  match Lb_csp.Solver.count_bounded ~stats ~budget csp with
  | Budget.Exhausted _ ->
      Alcotest.(check bool) "stats filled up to interruption" true
        (stats.Lb_csp.Solver.nodes > 0)
  | Budget.Done _ -> Alcotest.fail "200 ticks cannot count this instance"

let metrics_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.incr m "alpha";
  Metrics.add m "alpha" 41;
  Metrics.incr m "beta.gamma";
  Metrics.set_gauge m "delta" 0.125;
  Metrics.span m "work" (fun () -> ());
  let json = Metrics.to_json m in
  let parsed =
    match Metrics.parse_json json with
    | kvs -> kvs
    | exception Metrics.Parse_error _ ->
        Alcotest.failf "emitted JSON failed to parse: %s" json
  in
  Alcotest.(check bool) "alpha survives the round trip" true
    (List.assoc_opt "alpha" parsed = Some 42.0);
  Alcotest.(check (option int)) "alpha" (Some 42) (Metrics.find_counter m "alpha");
  Alcotest.(check (option int)) "work.calls" (Some 1)
    (Metrics.find_counter m "work.calls");
  (* malformed inputs are rejected *)
  List.iter
    (fun bad ->
      match Metrics.parse_json bad with
      | (_ : (string * float) list) ->
          Alcotest.failf "accepted malformed JSON: %s" bad
      | exception Metrics.Parse_error _ -> ())
    [ ""; "{"; "{\"a\" 1}"; "{\"a\": }"; "{\"a\": 1,}"; "[1]" ]

let disabled_metrics_identical () =
  let f = hard_cnf () in
  let s1 = Dpll.fresh_stats () and s2 = Dpll.fresh_stats () in
  let r1 = Dpll.solve ~stats:s1 ~metrics:Metrics.disabled f in
  let m = Metrics.create () in
  let r2 = Dpll.solve ~stats:s2 ~metrics:m f in
  Alcotest.(check bool) "same verdict" true ((r1 <> None) = (r2 <> None));
  Alcotest.(check int) "same decisions" s1.Dpll.decisions s2.Dpll.decisions;
  Alcotest.(check int) "same propagations" s1.Dpll.propagations
    s2.Dpll.propagations;
  Alcotest.(check (option int)) "sink saw the decision count"
    (Some s2.Dpll.decisions)
    (Metrics.find_counter m "dpll.decisions");
  Alcotest.(check bool) "disabled sink stayed empty" true
    (Metrics.counters Metrics.disabled = [])

let metrics_merge_and_clear () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add a "x" 2;
  Metrics.add b "x" 3;
  Metrics.add b "y" 1;
  Metrics.merge_into ~dst:a b;
  Alcotest.(check (option int)) "x merged" (Some 5) (Metrics.find_counter a "x");
  Alcotest.(check (option int)) "y merged" (Some 1) (Metrics.find_counter a "y");
  Metrics.clear a;
  Alcotest.(check bool) "cleared" true (Metrics.counters a = [])

let budget_across_engines () =
  (* every engine surfaces the same typed exhaustion *)
  let db =
    let tuples = List.init 80 (fun i -> [| i / 9; i mod 9 |]) in
    Lb_relalg.Database.of_list
      [
        ("R", Lb_relalg.Relation.make [| "a"; "b" |] tuples);
        ("S", Lb_relalg.Relation.make [| "b"; "c" |] tuples);
        ("T", Lb_relalg.Relation.make [| "a"; "c" |] tuples);
      ]
  in
  let q = Lb_relalg.Query.parse "R(a,b), S(b,c), T(a,c)" in
  let exhausted = function
    | Budget.Exhausted _ -> true
    | Budget.Done _ -> false
  in
  Alcotest.(check bool) "generic join" true
    (exhausted
       (Lb_relalg.Generic_join.count_bounded
          ~ctx:(Lb_util.Exec.make ~budget:(Budget.create ~ticks:5 ()) ())
          db q));
  Alcotest.(check bool) "leapfrog" true
    (exhausted
       (Lb_relalg.Leapfrog.count_bounded
          ~ctx:(Lb_util.Exec.make ~budget:(Budget.create ~ticks:5 ()) ())
          db q));
  let a = Array.init 400 (fun i -> i) in
  let exhausts_dp f = match f () with
    | (_ : int) -> false
    | exception Budget.Budget_exhausted _ -> true
  in
  Alcotest.(check bool) "edit distance" true
    (exhausts_dp (fun () ->
         Lb_finegrained.Edit_distance.quadratic
           ~budget:(Budget.create ~ticks:5 ()) a a));
  Alcotest.(check bool) "lcs" true
    (exhausts_dp (fun () ->
         Lb_finegrained.Lcs.quadratic ~budget:(Budget.create ~ticks:5 ()) a a))

(* The deprecated labelled arguments survive the Exec migration: the
   legacy ?budget/?metrics spellings on Freuder still govern and record
   exactly as before, and Yannakakis - newly governable - honours a ctx
   budget and records its stats into the ctx sink. *)
let legacy_wrappers_freuder_yannakakis () =
  let rng = Prng.create 77 in
  let csp, _, _ =
    Lb_csp.Generators.bounded_treewidth rng ~nvars:30 ~width:2 ~domain_size:5
      ~density:0.8 ~plant:true
  in
  let metrics = Metrics.create () in
  let n = Lb_csp.Freuder.count ~metrics csp in
  Alcotest.(check bool) "freuder counted something" true (n >= 1);
  (match Metrics.find_counter metrics "freuder.bags" with
  | Some b when b >= 1 -> ()
  | _ -> Alcotest.fail "legacy ~metrics did not record freuder.bags");
  (match Lb_csp.Freuder.count_bounded ~budget:(Budget.create ~ticks:2 ()) csp with
  | Budget.Exhausted e ->
      Alcotest.(check bool) "freuder legacy ~budget governs" true
        (e.Budget.reason = Budget.Ticks)
  | Budget.Done _ -> Alcotest.fail "2 ticks should not finish Freuder");
  let db =
    Lb_relalg.Database.of_list
      [
        ("R", Lb_relalg.Relation.make [| "a"; "b" |] [ [| 1; 2 |]; [| 2; 3 |] ]);
        ("S", Lb_relalg.Relation.make [| "b"; "c" |] [ [| 2; 7 |]; [| 3; 9 |] ]);
      ]
  in
  let q = Lb_relalg.Query.parse "R(a,b), S(b,c)" in
  let sink = Metrics.create () in
  let rel, stats =
    Lb_relalg.Yannakakis.answer
      ~ctx:Lb_util.Exec.(default |> with_metrics sink)
      db q
  in
  Alcotest.(check int) "yannakakis answer" 2 (Lb_relalg.Relation.cardinality rel);
  Alcotest.(check (option int)) "ctx sink got the semijoin count"
    (Some stats.Lb_relalg.Yannakakis.semijoins)
    (Metrics.find_counter sink "yannakakis.semijoins");
  match
    Budget.protect (fun () ->
        Lb_relalg.Yannakakis.answer
          ~ctx:Lb_util.Exec.(default |> with_budget (Budget.create ~ticks:1 ()))
          db q)
  with
  | Budget.Exhausted e ->
      Alcotest.(check bool) "yannakakis ctx budget governs" true
        (e.Budget.reason = Budget.Ticks)
  | Budget.Done _ -> Alcotest.fail "1 tick should not finish Yannakakis"

let suite =
  [
    ("tick limit is exact", `Quick, tick_limit_exact);
    ("deadline fires within one quantum", `Quick, deadline_within_quantum);
    ("50ms deadline on hard DPLL returns promptly", `Quick, dpll_deadline_prompt);
    ("cancellation leaves solvers re-runnable", `Quick, cancellation_rerunnable);
    ("interrupted CSP search keeps partial stats", `Quick, csp_budget_partial_stats);
    ("metrics JSON round-trips", `Quick, metrics_json_roundtrip);
    ("disabled metrics leave runs identical", `Quick, disabled_metrics_identical);
    ("metrics merge and clear", `Quick, metrics_merge_and_clear);
    ("typed exhaustion across engines", `Quick, budget_across_engines);
    ( "legacy wrappers still govern (Freuder, Yannakakis ctx)",
      `Quick,
      legacy_wrappers_freuder_yannakakis );
  ]
