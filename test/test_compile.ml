(* Differential tests for the plan compilation tier.

   The contract under test: for every (query, database) pair and every
   driver - sequential, Domain-parallel, sharded at k in {1,2,3,7} -
   the compiled loop nest produces the same answers AND the same work
   counters (intersections / seeks / emitted) as the interpreted
   engines, with budget ticks landing at the same points (so partial
   counters after a mid-query exhaustion match too).  Instances reuse
   the generators and seeds of test_join_engine.ml. *)

module Q = Lb_relalg.Query
module R = Lb_relalg.Relation
module Db = Lb_relalg.Database
module Gj = Lb_relalg.Generic_join
module Lf = Lb_relalg.Leapfrog
module C = Lb_relalg.Compile
module Pool = Lb_util.Pool
module Prng = Lb_util.Prng
module Budget = Lb_util.Budget
module Exec = Lb_util.Exec
module Metrics = Lb_util.Metrics

let check = Alcotest.check

(* --- random instances (same generators and seeds as
   test_join_engine.ml) --- *)

let var_pool = [| "a"; "b"; "c"; "d" |]

let random_query rng =
  let nvars = 2 + Prng.int rng 3 in
  let natoms = 1 + Prng.int rng 3 in
  List.init natoms (fun i ->
      let arity = 1 + Prng.int rng 3 in
      let vs = Array.init arity (fun _ -> var_pool.(Prng.int rng nvars)) in
      Q.atom (Printf.sprintf "R%d" i) vs)

let random_db rng (q : Q.t) =
  let dom = 2 + Prng.int rng 4 in
  Db.of_list
    (List.map
       (fun (a : Q.atom) ->
         let arity = Array.length a.Q.attrs in
         let nrows = if Prng.bernoulli rng 0.05 then 0 else 1 + Prng.int rng 12 in
         let tuples =
           List.init nrows (fun _ ->
               Array.init arity (fun _ -> Prng.int rng dom))
         in
         let attrs = Array.init arity (Printf.sprintf "c%d") in
         (a.Q.rel, R.make attrs tuples))
       q)

(* Interpreted reference counters as the unified (work, emitted) pair. *)
let interp_gj db q =
  let cs = Gj.fresh_counters () in
  let n = Gj.count ~counters:cs db q in
  (n, cs.Gj.intersections, cs.Gj.emitted)

let interp_lf db q =
  let cs = Lf.fresh_counters () in
  let n = Lf.count ~counters:cs db q in
  (n, cs.Lf.seeks, cs.Lf.emitted)

let engines = [ (C.Generic, interp_gj); (C.Leapfrog, interp_lf) ]

let test_differential_seq () =
  for seed = 1 to 100 do
    let rng = Prng.create (31 * seed) in
    let q = random_query rng in
    let db = random_db rng q in
    let oracle = Q.answer db q in
    List.iter
      (fun (eng, interp) ->
        let ctxt =
          Printf.sprintf "%s seed %d, query %s" (C.engine_name eng) seed
            (Q.to_string q)
        in
        let ir = C.lower ~engine:eng q in
        let n_i, work_i, emitted_i = interp db q in
        let cc = C.fresh_counters () in
        let n_c = C.count ~counters:cc ir db q in
        check Alcotest.int (ctxt ^ ": count") n_i n_c;
        check Alcotest.int (ctxt ^ ": work counter") work_i cc.C.work;
        check Alcotest.int (ctxt ^ ": emitted counter") emitted_i cc.C.emitted;
        if not (R.equal_modulo_order oracle (C.answer ir db q)) then
          Alcotest.failf "compiled answer disagrees with oracle (%s)" ctxt)
      engines
  done

let test_differential_sharded () =
  List.iter
    (fun shards ->
      for seed = 1 to 50 do
        let rng = Prng.create (31 * seed) in
        let q = random_query rng in
        let db = random_db rng q in
        let oracle = Q.answer db q in
        List.iter
          (fun (eng, interp) ->
            let ctxt =
              Printf.sprintf "%s k=%d seed %d, query %s" (C.engine_name eng)
                shards seed (Q.to_string q)
            in
            let ir = C.lower ~engine:eng q in
            let n_i, work_i, emitted_i = interp db q in
            let cc = C.fresh_counters () in
            let n_c = C.count_sharded ~counters:cc ~shards ir db q in
            check Alcotest.int (ctxt ^ ": count") n_i n_c;
            check Alcotest.int (ctxt ^ ": work counter") work_i cc.C.work;
            check Alcotest.int (ctxt ^ ": emitted counter") emitted_i
              cc.C.emitted;
            if
              not
                (R.equal_modulo_order oracle
                   (C.run_sharded ~shards ir db q))
            then
              Alcotest.failf "compiled sharded answer disagrees (%s)" ctxt)
          engines
      done)
    [ 1; 2; 3; 7 ]

let test_differential_pooled () =
  Pool.with_pool 3 (fun pool ->
      let ctx = Exec.make ~pool () in
      for seed = 1 to 25 do
        let rng = Prng.create (977 * seed) in
        let q = random_query rng in
        let db = random_db rng q in
        List.iter
          (fun (eng, interp) ->
            let ctxt =
              Printf.sprintf "%s seed %d, query %s" (C.engine_name eng) seed
                (Q.to_string q)
            in
            let ir = C.lower ~engine:eng q in
            let n_i, work_i, emitted_i = interp db q in
            let cc = C.fresh_counters () in
            let n_c = C.count ~counters:cc ~ctx ir db q in
            check Alcotest.int (ctxt ^ ": pooled count") n_i n_c;
            check Alcotest.int (ctxt ^ ": pooled work") work_i cc.C.work;
            check Alcotest.int (ctxt ^ ": pooled emitted") emitted_i
              cc.C.emitted;
            if
              not
                (R.equal (C.answer ir db q) (C.answer ~ctx ir db q))
            then Alcotest.failf "pooled compiled answer differs (%s)" ctxt)
          engines
      done)

(* --- budget exhaustion mid-query: partial counters must match --- *)

let broom_relation n attrs =
  let tuples = ref [ [| 0; 0 |] ] in
  for i = 1 to n do
    tuples := [| 0; i |] :: [| i; 0 |] :: !tuples
  done;
  R.make attrs !tuples

let broom_db n =
  Db.of_list
    [
      ("R", broom_relation n [| "a"; "b" |]);
      ("S", broom_relation n [| "b"; "c" |]);
      ("T", broom_relation n [| "a"; "c" |]);
    ]

let triangle = Q.parse "R(a,b), S(b,c), T(a,c)"

let exhausted_ticks name = function
  | Budget.Done _ -> Alcotest.failf "%s: expected exhaustion, got Done" name
  | Budget.Exhausted e -> e.Budget.ticks

let test_budget_exhaustion_partial_counters () =
  let db = broom_db 120 in
  List.iter
    (fun ticks ->
      (* Generic Join, unsharded *)
      let cs = Gj.fresh_counters () in
      let ti =
        exhausted_ticks "interpreted gj"
          (Gj.count_bounded ~counters:cs
             ~ctx:(Exec.make ~budget:(Budget.create ~ticks ()) ())
             db triangle)
      in
      let ir = C.lower ~engine:C.Generic triangle in
      let cc = C.fresh_counters () in
      let tc =
        exhausted_ticks "compiled gj"
          (C.count_bounded ~counters:cc
             ~ctx:(Exec.make ~budget:(Budget.create ~ticks ()) ())
             ir db triangle)
      in
      check Alcotest.int "gj ticks at exhaustion" ti tc;
      check Alcotest.int "gj partial intersections" cs.Gj.intersections
        cc.C.work;
      check Alcotest.int "gj partial emitted" cs.Gj.emitted cc.C.emitted;
      (* Leapfrog, unsharded *)
      let ls = Lf.fresh_counters () in
      let tl =
        exhausted_ticks "interpreted lf"
          (Lf.count_bounded ~counters:ls
             ~ctx:(Exec.make ~budget:(Budget.create ~ticks ()) ())
             db triangle)
      in
      let irl = C.lower ~engine:C.Leapfrog triangle in
      let lc = C.fresh_counters () in
      let tlc =
        exhausted_ticks "compiled lf"
          (C.count_bounded ~counters:lc
             ~ctx:(Exec.make ~budget:(Budget.create ~ticks ()) ())
             irl db triangle)
      in
      check Alcotest.int "lf ticks at exhaustion" tl tlc;
      check Alcotest.int "lf partial seeks" ls.Lf.seeks lc.C.work;
      check Alcotest.int "lf partial emitted" ls.Lf.emitted lc.C.emitted;
      (* Sharded compiled vs sharded interpreted (the sharded drivers
         defer leaf emission until after level-0 task generation, so
         their partials legitimately differ from the unsharded run's -
         but compiled and interpreted must still agree tick for
         tick). *)
      let cs3 = Gj.fresh_counters () in
      let ti3 =
        exhausted_ticks "interpreted sharded gj"
          (Budget.protect (fun () ->
               Gj.count_sharded ~counters:cs3
                 ~ctx:(Exec.make ~budget:(Budget.create ~ticks ()) ())
                 ~shards:3 db triangle))
      in
      let cc3 = C.fresh_counters () in
      let t3 =
        exhausted_ticks "compiled sharded gj"
          (Budget.protect (fun () ->
               C.count_sharded ~counters:cc3
                 ~ctx:(Exec.make ~budget:(Budget.create ~ticks ()) ())
                 ~shards:3 ir db triangle))
      in
      check Alcotest.int "sharded ticks at exhaustion" ti3 t3;
      check Alcotest.int "sharded partial work" cs3.Gj.intersections
        cc3.C.work;
      check Alcotest.int "sharded partial emitted" cs3.Gj.emitted cc3.C.emitted)
    [ 5; 57; 351 ]

(* --- metrics sink parity: compiled paths report to the interpreted
   engines' metric names --- *)

let test_metrics_names () =
  let db = broom_db 40 in
  let mi = Metrics.create () and mc = Metrics.create () in
  ignore (Gj.count ~ctx:(Exec.make ~metrics:mi ()) db triangle);
  let ir = C.lower ~engine:C.Generic triangle in
  ignore (C.count ~ctx:(Exec.make ~metrics:mc ()) ir db triangle);
  List.iter
    (fun name ->
      check Alcotest.(option int) name
        (Metrics.find_counter mi name)
        (Metrics.find_counter mc name))
    [
      "generic_join.trie_builds";
      "generic_join.intersections";
      "generic_join.emitted";
    ]

(* --- the IR itself --- *)

let test_lower_shape () =
  let ir = C.lower ~engine:C.Generic triangle in
  check Alcotest.int "nvars" 3 ir.C.nvars;
  check Alcotest.int "natoms" 3 ir.C.natoms;
  check
    Alcotest.(array string)
    "order" [| "a"; "b"; "c" |] ir.C.order;
  (* level 0 (a): R@0, T@0; level 1 (b): R@1, S@0; level 2 (c): S@1, T@1 *)
  check Alcotest.(array int) "lv_off" [| 0; 2; 4; 6 |] ir.C.lv_off;
  check Alcotest.(array int) "lv_atom" [| 0; 2; 0; 1; 1; 2 |] ir.C.lv_atom;
  check Alcotest.(array int) "lv_depth" [| 0; 0; 1; 0; 1; 1 |] ir.C.lv_depth;
  check Alcotest.bool "weight is positive" true (C.weight ir > 0);
  check Alcotest.int "describe lines" (1 + 3)
    (List.length (C.describe ir));
  (* repeated attributes inside an atom collapse to one trie level *)
  let self = Q.parse "R(a,a,b)" in
  let ir2 = C.lower ~engine:C.Leapfrog self in
  check Alcotest.(array int) "self-join lv_depth" [| 0; 1 |] ir2.C.lv_depth

let suite =
  [
    Alcotest.test_case "100 random queries: compiled = interpreted (seq)"
      `Quick test_differential_seq;
    Alcotest.test_case "sharded k in {1,2,3,7}: compiled = interpreted" `Quick
      test_differential_sharded;
    Alcotest.test_case "pooled: compiled = interpreted (25 random)" `Quick
      test_differential_pooled;
    Alcotest.test_case "budget exhaustion: partial counters match" `Quick
      test_budget_exhaustion_partial_counters;
    Alcotest.test_case "compiled reports interpreted metric names" `Quick
      test_metrics_names;
    Alcotest.test_case "lowered IR shape" `Quick test_lower_shape;
  ]
